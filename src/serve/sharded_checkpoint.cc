#include "serve/sharded_checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/binary_io.h"
#include "common/strings.h"
#include "serve/framing.h"

namespace gralmatch {

namespace {

constexpr char kShardMagic[8] = {'G', 'R', 'L', 'M', 'S', 'H', 'R', 'D'};
constexpr char kManifestMagic[8] = {'G', 'R', 'L', 'M', 'M', 'N', 'F', 'T'};
constexpr char kManifestName[] = "manifest.grlm";

/// Content-addressed shard file name: the checksum (the same value the
/// manifest records for this shard) is part of the name, so two saves
/// never collide on a name unless the bytes are identical.
std::string ShardFileName(size_t shard, uint64_t checksum) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(checksum));
  return "shard-" + std::to_string(shard) + "-" + hex + ".grlm";
}

/// Parse just enough of the manifest to learn the per-shard checksums
/// (magic, version, fingerprint, shard count, checksum list). The caller
/// decides how much further validation to run.
struct ManifestHeader {
  uint32_t version = 0;
  std::string fingerprint;
  std::vector<uint64_t> shard_checksums;
  uint64_t trailing_checksum = 0;
};

Result<ManifestHeader> ReadManifestHeader(BinaryReader* reader,
                                          const std::string& image) {
  GRALMATCH_RETURN_NOT_OK(
      CheckMagicBytes(reader, kManifestMagic, "sharded checkpoint manifest"));
  ManifestHeader header;
  GRALMATCH_RETURN_NOT_OK(CheckFormatVersion(
      reader, kShardedCheckpointVersion, "manifest", &header.version));
  GRALMATCH_ASSIGN_OR_RETURN(header.trailing_checksum,
                             CheckTrailingChecksum(image, "manifest"));
  GRALMATCH_RETURN_NOT_OK(reader->ReadString(&header.fingerprint));
  uint64_t num_shards = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &num_shards));
  if (num_shards == 0) {
    return Status::IOError("corrupted manifest: zero shards");
  }
  header.shard_checksums.resize(static_cast<size_t>(num_shards));
  for (uint64_t& checksum : header.shard_checksums) {
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&checksum));
  }
  return header;
}

/// Delete every shard file in `dir` that the just-committed manifest does
/// not reference (previous checkpoints' files, halves of interrupted
/// saves, stray temp files). Best-effort: a GC failure never fails the
/// save — the extra files are harmless to every future load.
void CollectGarbage(const std::string& dir,
                    const std::unordered_set<std::string>& live_names) {
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    const bool stale_shard = StartsWith(name, "shard-") &&
                             EndsWith(name, ".grlm") && !live_names.count(name);
    // WriteFileAtomically's temp names are "<file>.tmp.<pid>.<counter>";
    // plain ".tmp" suffixes cover files older binaries left behind.
    const bool stray_tmp =
        EndsWith(name, ".tmp") || name.find(".tmp.") != std::string::npos;
    if (stale_shard || stray_tmp) {
      std::remove((dir + "/" + name).c_str());
    }
  }
  closedir(handle);
}

}  // namespace

std::string ShardedManifestPath(const std::string& dir) {
  return dir + "/" + kManifestName;
}

Result<std::vector<std::string>> ShardFilePaths(const std::string& dir) {
  GRALMATCH_ASSIGN_OR_RETURN(const std::string image,
                             ReadWholeFile(ShardedManifestPath(dir)));
  BinaryReader reader(image);
  GRALMATCH_ASSIGN_OR_RETURN(const ManifestHeader header,
                             ReadManifestHeader(&reader, image));
  std::vector<std::string> paths;
  paths.reserve(header.shard_checksums.size());
  for (size_t s = 0; s < header.shard_checksums.size(); ++s) {
    paths.push_back(dir + "/" + ShardFileName(s, header.shard_checksums[s]));
  }
  return paths;
}

Status SaveShardedCheckpoint(const ShardedPipeline& pipeline,
                             const std::string& dir,
                             obs::MetricsRegistry* metrics) {
  obs::TraceScope save_span(
      metrics == nullptr ? nullptr
                         : metrics->GetHistogram("checkpoint_save_seconds"));
  GRALMATCH_RETURN_NOT_OK(pipeline.status());
  if (mkdir(dir.c_str(), 0777) != 0) {
    if (errno != EEXIST) {
      return Status::IOErrorFromErrno("cannot create checkpoint directory: " +
                                      dir);
    }
    // EEXIST only means *some* path component exists — a regular file at
    // `dir` would otherwise surface later as confusing per-shard-file write
    // failures instead of one clear error here.
    struct stat info;
    if (stat(dir.c_str(), &info) != 0) {
      return Status::IOErrorFromErrno("cannot stat checkpoint directory: " +
                                      dir);
    }
    if (!S_ISDIR(info.st_mode)) {
      return Status::IOError("checkpoint directory path exists but is not a "
                             "directory: " +
                             dir);
    }
  }

  // Content-addressed shard files first. Their names are new unless their
  // bytes are identical to an existing file's, so the previous checkpoint
  // stays complete on disk throughout.
  std::vector<BinaryWriter> bodies;
  GRALMATCH_RETURN_NOT_OK(pipeline.SerializeShardBodies(&bodies));
  // Lowest version that can represent the state, uniform across the
  // manifest and every shard file: tombstone sections (and with them
  // version 2) exist only when some record is dead, so a tombstone-free
  // pipeline keeps producing byte-identical version 1 checkpoints.
  const uint32_t version =
      pipeline.num_dead() > 0 ? kShardedCheckpointVersion : 1;
  std::vector<uint64_t> shard_checksums;
  std::unordered_set<std::string> live_names;
  shard_checksums.reserve(bodies.size());
  for (size_t s = 0; s < bodies.size(); ++s) {
    BinaryWriter image;
    image.WriteBytes(kShardMagic, sizeof(kShardMagic));
    image.WriteU32(version);
    image.WriteU32(static_cast<uint32_t>(s));
    image.WriteU64(bodies[s].size());
    image.WriteBytes(bodies[s].buffer().data(), bodies[s].size());
    image.WriteU64(Fnv1a64(image.buffer()));
    const uint64_t checksum = Fnv1a64(image.buffer());
    shard_checksums.push_back(checksum);
    const std::string name = ShardFileName(s, checksum);
    live_names.insert(name);
    GRALMATCH_RETURN_NOT_OK(
        WriteFileAtomically(dir + "/" + name, image.buffer()));
  }

  // The manifest — the only pointer that makes the files a checkpoint —
  // commits atomically last.
  BinaryWriter manifest;
  manifest.WriteBytes(kManifestMagic, sizeof(kManifestMagic));
  manifest.WriteU32(version);
  manifest.WriteString(pipeline.fingerprint());
  manifest.WriteU64(shard_checksums.size());
  for (const uint64_t checksum : shard_checksums) {
    manifest.WriteU64(checksum);
  }
  const size_t body_size_pos = manifest.size();
  manifest.WriteU64(0);
  GRALMATCH_RETURN_NOT_OK(pipeline.SerializeManifestBody(&manifest));
  manifest.PatchU64(body_size_pos, manifest.size() - body_size_pos - 8);
  manifest.WriteU64(Fnv1a64(manifest.buffer()));
  GRALMATCH_RETURN_NOT_OK(
      WriteFileAtomically(ShardedManifestPath(dir), manifest.buffer()));

  CollectGarbage(dir, live_names);
  return Status::OK();
}

Result<std::unique_ptr<ShardedPipeline>> LoadShardedCheckpoint(
    const std::string& dir, const PairwiseMatcher& matcher,
    size_t num_threads_override, obs::MetricsRegistry* metrics) {
  obs::TraceScope load_span(
      metrics == nullptr ? nullptr
                         : metrics->GetHistogram("checkpoint_load_seconds"));
  GRALMATCH_ASSIGN_OR_RETURN(const std::string manifest_image,
                             ReadWholeFile(ShardedManifestPath(dir)));
  BinaryReader manifest(manifest_image);
  GRALMATCH_ASSIGN_OR_RETURN(const ManifestHeader header,
                             ReadManifestHeader(&manifest, manifest_image));
  if (!header.fingerprint.empty() &&
      header.fingerprint != matcher.Fingerprint()) {
    return Status::InvalidArgument(
        "matcher fingerprint mismatch: checkpoint was saved under \"" +
        header.fingerprint + "\" but the serving matcher is \"" +
        matcher.Fingerprint() +
        "\"; the cached pair scores are only valid for the saved matcher");
  }

  std::string_view manifest_body;
  GRALMATCH_RETURN_NOT_OK(manifest.ReadStringView(&manifest_body));
  uint64_t trailing = 0;
  GRALMATCH_RETURN_NOT_OK(manifest.ReadU64(&trailing));
  if (trailing != header.trailing_checksum) {
    return Status::IOError(
        "manifest corrupted: body length disagrees with the checksum "
        "position");
  }
  if (!manifest.AtEnd()) {
    return Status::IOError("manifest corrupted: " +
                           std::to_string(manifest.remaining()) +
                           " trailing bytes after the checksum");
  }

  // Shard files: each must exist under its content-addressed name and
  // hash to exactly what the manifest recorded — a partial save, a stale
  // file from an older checkpoint, or two shard files swapped on disk all
  // fail here, before any content is trusted.
  std::vector<std::string> shard_images;
  shard_images.reserve(header.shard_checksums.size());
  for (size_t s = 0; s < header.shard_checksums.size(); ++s) {
    const std::string path =
        dir + "/" + ShardFileName(s, header.shard_checksums[s]);
    auto image = ReadWholeFile(path);
    if (!image.ok()) {
      return Status::IOError("sharded checkpoint is missing shard file " +
                             path + ": " + image.status().message());
    }
    if (Fnv1a64(*image) != header.shard_checksums[s]) {
      return Status::IOError(
          "shard file " + path +
          " does not match the manifest checksum (damaged, stale, or "
          "swapped with another shard's file)");
    }
    shard_images.push_back(std::move(*image));
  }

  std::vector<BinaryReader> shard_bodies;
  shard_bodies.reserve(shard_images.size());
  for (size_t s = 0; s < shard_images.size(); ++s) {
    BinaryReader reader(shard_images[s]);
    GRALMATCH_RETURN_NOT_OK(
        CheckMagicBytes(&reader, kShardMagic, "shard checkpoint file"));
    uint32_t shard_version = 0;
    GRALMATCH_RETURN_NOT_OK(CheckFormatVersion(
        &reader, kShardedCheckpointVersion, "shard file", &shard_version));
    if (shard_version != header.version) {
      return Status::IOError(
          "shard file for shard " + std::to_string(s) + " carries version " +
          std::to_string(shard_version) + " but the manifest is version " +
          std::to_string(header.version) +
          "; the checkpoint's files must share one version");
    }
    GRALMATCH_ASSIGN_OR_RETURN(
        const uint64_t checksum,
        CheckTrailingChecksum(shard_images[s], "shard file"));
    (void)checksum;
    uint32_t index = 0;
    GRALMATCH_RETURN_NOT_OK(reader.ReadU32(&index));
    if (index != s) {
      return Status::IOError("shard file for shard " + std::to_string(s) +
                             " carries shard index " + std::to_string(index));
    }
    std::string_view body;
    GRALMATCH_RETURN_NOT_OK(reader.ReadStringView(&body));
    uint64_t shard_trailing = 0;
    GRALMATCH_RETURN_NOT_OK(reader.ReadU64(&shard_trailing));
    if (!reader.AtEnd()) {
      return Status::IOError("shard file corrupted: trailing bytes");
    }
    shard_bodies.emplace_back(body);
  }

  BinaryReader manifest_body_reader(manifest_body);
  auto result = ShardedPipeline::DeserializeFromParts(
      &manifest_body_reader, &shard_bodies, header.version,
      num_threads_override);
  if (!result.ok()) return result.status();
  if (!manifest_body_reader.AtEnd()) {
    return Status::IOError("manifest corrupted: unconsumed body bytes");
  }
  for (const BinaryReader& body : shard_bodies) {
    if (!body.AtEnd()) {
      return Status::IOError("shard file corrupted: unconsumed body bytes");
    }
  }
  if (result.ValueOrDie()->fingerprint() != header.fingerprint) {
    return Status::IOError(
        "manifest corrupted: header fingerprint disagrees with the "
        "serialized pipeline state");
  }
  return result;
}

}  // namespace gralmatch

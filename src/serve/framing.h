#ifndef GRALMATCH_SERVE_FRAMING_H_
#define GRALMATCH_SERVE_FRAMING_H_

/// \file framing.h
/// Shared framing primitives for the durable checkpoint formats — the
/// single-file pipeline checkpoint (checkpoint.h) and the sharded
/// manifest + per-shard-file checkpoint (sharded_checkpoint.h) frame their
/// images the same way (8-byte magic, u32 version, length-prefixed body,
/// trailing whole-image FNV-1a 64 checksum) and persist them with the same
/// atomic temp-file + rename discipline. One implementation here keeps the
/// two durability paths from drifting.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace gralmatch {

class BinaryReader;

/// Write `image` to `path` atomically and durably: a uniquely named temp
/// file next to `path` (pid + per-process counter, so concurrent savers to
/// the same path never share a temp file) is fsynced and then renamed over
/// it, and the parent directory is fsynced after the rename — a crash or
/// power loss at any point leaves the final name holding either the
/// previous complete image or the new complete image, never torn bytes.
Status WriteFileAtomically(const std::string& path, const std::string& image);

/// Read the complete file into one buffer (checkpoints scale with the full
/// pipeline state, so the restore path avoids stream-copy detours).
Result<std::string> ReadWholeFile(const std::string& path);

/// Consume and verify an 8-byte magic; `what` names the format in the
/// error ("not a gralmatch <what> (bad magic bytes)").
Status CheckMagicBytes(BinaryReader* reader, const char (&magic)[8],
                       const std::string& what);

/// Consume and verify a u32 format version: versions newer than
/// `current_version` are rejected, not misread, and version 0 is invalid.
/// The accepted version is returned through `parsed_version` (optional) —
/// multi-version readers branch their body layout on it.
Status CheckFormatVersion(BinaryReader* reader, uint32_t current_version,
                          const std::string& what,
                          uint32_t* parsed_version = nullptr);

/// Verify the trailing whole-image checksum (the last 8 bytes against the
/// FNV-1a 64 of everything before them), returning its value.
Result<uint64_t> CheckTrailingChecksum(const std::string& image,
                                       const std::string& what);

}  // namespace gralmatch

#endif  // GRALMATCH_SERVE_FRAMING_H_

#ifndef GRALMATCH_SERVE_MATCH_SERVICE_H_
#define GRALMATCH_SERVE_MATCH_SERVICE_H_

/// \file match_service.h
/// Concurrent read serving for the incremental pipeline: one ingest thread
/// publishes immutable, epoch-numbered snapshots of the current match
/// result, and any number of reader threads answer queries against them
/// while ingestion proceeds.
///
/// Consistency model: Publish() builds a complete MatchSnapshot off to the
/// side and then swaps one shared_ptr (under the publish mutex, which only
/// writers take). Readers obtain the current snapshot with an atomic
/// shared_ptr load — the read path never takes a lock in user code — and a
/// snapshot, once obtained, is immutable: every query against it observes
/// one consistent epoch, no matter how many epochs the writer publishes
/// meanwhile. The epoch a reader observes is monotonically non-decreasing
/// across successive View() calls.
///
/// The per-call conveniences (GroupOf / Members / Stats on the service)
/// each resolve against one snapshot, but two *separate* calls may span an
/// epoch boundary; callers needing multi-query consistency hold a View().

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "data/record.h"
#include "obs/metrics.h"

namespace gralmatch {

/// Aggregate counters of one published epoch.
struct ServeStats {
  uint64_t epoch = 0;
  size_t num_records = 0;
  /// Entity groups, singletons included.
  size_t num_groups = 0;
  /// Groups with at least two records (actual matches).
  size_t num_matched_groups = 0;
  size_t num_predicted_pairs = 0;

  bool operator==(const ServeStats& o) const {
    return epoch == o.epoch && num_records == o.num_records &&
           num_groups == o.num_groups &&
           num_matched_groups == o.num_matched_groups &&
           num_predicted_pairs == o.num_predicted_pairs;
  }
};

/// Group id within one epoch: the index of the group in the snapshot's
/// canonical group order. Ids are only meaningful within their epoch.
using GroupId = int64_t;
constexpr GroupId kNoGroup = -1;

/// \brief One immutable published epoch. Thread-safe by construction: all
/// state is written before publication and never mutated afterwards.
class MatchSnapshot {
 public:
  /// Derive a snapshot from a pipeline result covering `num_records`
  /// records. `epoch` is assigned by the publishing MatchService.
  MatchSnapshot(uint64_t epoch, const PipelineResult& result,
                size_t num_records);

  uint64_t epoch() const { return stats_.epoch; }
  const ServeStats& stats() const { return stats_; }

  /// Group of a record, kNoGroup for ids outside [0, num_records).
  GroupId GroupOf(RecordId record) const;

  /// Members of a group (ascending record ids); empty for invalid ids.
  const std::vector<RecordId>& Members(GroupId group) const;

  size_t num_groups() const { return groups_.size(); }

 private:
  ServeStats stats_;
  std::vector<GroupId> group_of_;            ///< record id -> group id
  std::vector<std::vector<RecordId>> groups_;  ///< group id -> member ids
  std::vector<RecordId> empty_;              ///< Members() result for bad ids
};

using MatchSnapshotPtr = std::shared_ptr<const MatchSnapshot>;

/// \brief Epoch-snapshot publication point between one ingest thread and
/// many reader threads.
class MatchService {
 public:
  /// Starts at epoch 0 with an empty snapshot, so readers never observe a
  /// null view. An optional registry (obs/metrics.h) records publish
  /// latency plus current-epoch/record gauges; null records nothing.
  /// Observability is inert — it never shows up in ServeStats, snapshots
  /// or any comparison.
  explicit MatchService(obs::MetricsRegistry* metrics = nullptr);

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Publish `result` (covering `num_records` records) as the next epoch.
  /// Called from the ingest thread after each Ingest()+Snapshot(); safe to
  /// call concurrently with any number of readers, and from multiple
  /// writers (epoch assignment and the swap are serialized by the mutex).
  /// Returns the published epoch.
  uint64_t Publish(const PipelineResult& result, size_t num_records)
      EXCLUDES(publish_mu_);

  /// The current snapshot (lock-free load; never null). All queries against
  /// the returned object see that one epoch.
  MatchSnapshotPtr View() const;

  /// Single-query conveniences; each resolves against one View().
  GroupId GroupOf(RecordId record) const { return View()->GroupOf(record); }
  std::vector<RecordId> Members(GroupId group) const {
    return View()->Members(group);
  }
  ServeStats Stats() const { return View()->stats(); }

 private:
  mutable Mutex publish_mu_;  ///< serializes writers; readers never lock
  /// Atomic-published: the swap in Publish() and the load in View() go
  /// through std::atomic_{store,load}_explicit, which take the member's
  /// *address* and are therefore outside the analysis. The GUARDED_BY keeps
  /// everyone honest anyway: any direct read or assignment of current_
  /// outside the publish lock (i.e. bypassing the atomic free functions) is
  /// a compile error under -Wthread-safety.
  MatchSnapshotPtr current_ GUARDED_BY(publish_mu_);
  uint64_t next_epoch_ GUARDED_BY(publish_mu_) = 1;
  /// Resolved instrument pointers (all null when no registry was given).
  /// Written only in the constructor, so recording needs no extra locking.
  const obs::ServeMetrics metrics_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_SERVE_MATCH_SERVICE_H_

#include "serve/framing.h"

#include <cstdio>
#include <fstream>
#include <string_view>

#include "common/binary_io.h"

namespace gralmatch {

Status WriteFileAtomically(const std::string& path, const std::string& image) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::IOError("cannot open for writing: " + tmp_path);
    }
    file.write(image.data(), static_cast<std::streamsize>(image.size()));
    file.flush();
    if (!file) return Status::IOError("write failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  const std::streamoff size = file.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  std::string image(static_cast<size_t>(size), '\0');
  file.seekg(0);
  if (size > 0) file.read(&image[0], size);
  if (!file) return Status::IOError("read failed: " + path);
  return image;
}

Status CheckMagicBytes(BinaryReader* reader, const char (&magic)[8],
                       const std::string& what) {
  for (size_t k = 0; k < sizeof(magic); ++k) {
    uint8_t byte = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&byte));
    if (byte != static_cast<uint8_t>(magic[k])) {
      return Status::InvalidArgument("not a gralmatch " + what +
                                     " (bad magic bytes)");
    }
  }
  return Status::OK();
}

Status CheckFormatVersion(BinaryReader* reader, uint32_t current_version,
                          const std::string& what, uint32_t* parsed_version) {
  uint32_t version = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version > current_version) {
    return Status::InvalidArgument(
        what + " version " + std::to_string(version) +
        " is newer than this binary's format version " +
        std::to_string(current_version) + "; refusing to guess its layout");
  }
  if (version == 0) {
    return Status::InvalidArgument(what + " version 0 is not valid");
  }
  if (parsed_version != nullptr) *parsed_version = version;
  return Status::OK();
}

Result<uint64_t> CheckTrailingChecksum(const std::string& image,
                                       const std::string& what) {
  if (image.size() < 8) {
    return Status::IOError("truncated " + what + ": missing checksum");
  }
  BinaryReader tail(std::string_view(image).substr(image.size() - 8));
  uint64_t stored = 0;
  GRALMATCH_RETURN_NOT_OK(tail.ReadU64(&stored));
  if (stored != Fnv1a64(std::string_view(image.data(), image.size() - 8))) {
    return Status::IOError(what +
                           " corrupted: checksum mismatch (file damaged or "
                           "partially written)");
  }
  return stored;
}

}  // namespace gralmatch

#include "serve/framing.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <string_view>

#include "common/binary_io.h"

namespace gralmatch {

namespace {

/// Temp name unique across processes (pid) and across concurrent savers in
/// this process (atomic counter): two threads saving to the same path each
/// write their own temp file, and the rename decides which image wins —
/// neither can publish the other's partial bytes.
std::string UniqueTempPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(static_cast<long long>(getpid())) +
         "." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// fsync the directory holding `path`, making a just-committed rename of an
/// entry inside it survive power loss. Best-effort by contract: some
/// filesystems refuse to open or fsync directories, and the data itself is
/// already durable — only the *name* could revert to the previous image,
/// which is exactly the pre-rename state and still a valid file.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)fsync(fd);
  (void)close(fd);
}

}  // namespace

Status WriteFileAtomically(const std::string& path, const std::string& image) {
  const std::string tmp_path = UniqueTempPath(path);
  const int fd = open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  if (fd < 0) {
    return Status::IOErrorFromErrno("cannot open for writing: " + tmp_path);
  }
  size_t written = 0;
  while (written < image.size()) {
    const ssize_t n =
        write(fd, image.data() + written, image.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failure = Status::IOErrorFromErrno("write failed: " + tmp_path);
      (void)close(fd);
      (void)std::remove(tmp_path.c_str());
      return failure;
    }
    written += static_cast<size_t>(n);
  }
  // The bytes must be durable *before* the rename publishes the name: a
  // crash after the rename but before a data flush would otherwise leave
  // the final name pointing at a torn file — the exact failure the atomic
  // discipline promises away.
  if (fsync(fd) != 0) {
    Status failure = Status::IOErrorFromErrno("fsync failed: " + tmp_path);
    (void)close(fd);
    (void)std::remove(tmp_path.c_str());
    return failure;
  }
  if (close(fd) != 0) {
    Status failure = Status::IOErrorFromErrno("close failed: " + tmp_path);
    (void)std::remove(tmp_path.c_str());
    return failure;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status failure = Status::IOErrorFromErrno("cannot rename " + tmp_path +
                                              " to " + path);
    (void)std::remove(tmp_path.c_str());
    return failure;
  }
  SyncParentDirectory(path);
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOErrorFromErrno("cannot open for reading: " + path);
  }
  struct stat info;
  if (fstat(fd, &info) != 0) {
    Status failure = Status::IOErrorFromErrno("cannot stat: " + path);
    (void)close(fd);
    return failure;
  }
  std::string image(static_cast<size_t>(info.st_size), '\0');
  size_t filled = 0;
  while (filled < image.size()) {
    const ssize_t n = read(fd, &image[filled], image.size() - filled);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failure = Status::IOErrorFromErrno("read failed: " + path);
      (void)close(fd);
      return failure;
    }
    if (n == 0) break;  // shrank under us; return what exists
    filled += static_cast<size_t>(n);
  }
  (void)close(fd);
  image.resize(filled);
  return image;
}

Status CheckMagicBytes(BinaryReader* reader, const char (&magic)[8],
                       const std::string& what) {
  for (size_t k = 0; k < sizeof(magic); ++k) {
    uint8_t byte = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&byte));
    if (byte != static_cast<uint8_t>(magic[k])) {
      return Status::InvalidArgument("not a gralmatch " + what +
                                     " (bad magic bytes)");
    }
  }
  return Status::OK();
}

Status CheckFormatVersion(BinaryReader* reader, uint32_t current_version,
                          const std::string& what, uint32_t* parsed_version) {
  uint32_t version = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version > current_version) {
    return Status::InvalidArgument(
        what + " version " + std::to_string(version) +
        " is newer than this binary's format version " +
        std::to_string(current_version) + "; refusing to guess its layout");
  }
  if (version == 0) {
    return Status::InvalidArgument(what + " version 0 is not valid");
  }
  if (parsed_version != nullptr) *parsed_version = version;
  return Status::OK();
}

Result<uint64_t> CheckTrailingChecksum(const std::string& image,
                                       const std::string& what) {
  if (image.size() < 8) {
    return Status::IOError("truncated " + what + ": missing checksum");
  }
  BinaryReader tail(std::string_view(image).substr(image.size() - 8));
  uint64_t stored = 0;
  GRALMATCH_RETURN_NOT_OK(tail.ReadU64(&stored));
  if (stored != Fnv1a64(std::string_view(image.data(), image.size() - 8))) {
    return Status::IOError(what +
                           " corrupted: checksum mismatch (file damaged or "
                           "partially written)");
  }
  return stored;
}

}  // namespace gralmatch

#ifndef GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_
#define GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_

/// \file incremental_pipeline.h
/// Streaming ingestion for the entity-group pipeline. Record batches arrive
/// via Ingest(), corrections via Update() and deletions via Remove(), and
/// three layers of state update in place instead of being recomputed from
/// scratch:
///
///  1. Blocking: incremental Token/ID Overlap inverted indexes
///     (blocking/incremental_index.h) emit only the candidate pairs the
///     mutation adds or retracts.
///  2. Scoring: a pair-score cache keyed by (record_a, record_b,
///     matcher fingerprint) guarantees a pair is sent to the matcher at
///     most once while the fingerprint stays the same — re-admitted
///     candidates are served from the cache. The cache holds the current
///     fingerprint only: a fingerprint change clears it, so alternating
///     between matchers rescores on every swap.
///  3. Cleanup: new positive edges are unioned into the maintained
///     component structure (stream/group_store.h) and the Pre + GraLMatch
///     Graph Cleanup reruns only on *dirty* components (those that gained
///     or lost a node, an edge, or a provenance bit); untouched groups are
///     spliced through unchanged with their cached cleanup counters.
///
/// Batch-equivalence contract (enforced by tests/stream_test.cc): after any
/// sequence of ingests, Snapshot() — groups, predicted pairs, pre-cleanup
/// components and all cleanup counters — is identical to
/// EntityGroupPipeline::Run on the union of all batches with the same
/// blockers and matcher, at any num_threads. Only the wall-clock fields
/// differ in meaning: Snapshot() reports times accumulated across ingests.
///
/// Schedule-equivalence contract (enforced by tests/crud_test.cc): the
/// contract survives deletions. Records are tombstoned, never recycled —
/// the table stays append-only, ids are stable, and a removed record's
/// payload is retained so its blocking keys can be re-extracted — and after
/// ANY interleaved Ingest/Update/Remove schedule, Snapshot() equals a
/// from-scratch run on the surviving records (modulo the monotone id
/// compaction a fresh run would assign).

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/incremental_index.h"
#include "core/pipeline.h"
#include "data/record.h"
#include "matching/matcher.h"
#include "stream/group_store.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;
class ThreadPool;

/// Parameters of the incremental pipeline: the batch pipeline's config plus
/// the blocking setup it maintains incrementally.
struct IncrementalPipelineConfig {
  /// Threshold, cleanup, pre-cleanup and num_threads semantics are exactly
  /// those of the batch EntityGroupPipeline.
  PipelineConfig pipeline;
  /// Token Overlap blocking parameters (num_threads is taken from
  /// `pipeline.num_threads`, not from here).
  TokenOverlapBlocker::Options token;
  bool use_token_blocker = true;
  bool use_id_blocker = true;
};

/// One correction: tombstone the live record `id` and ingest `record` as
/// its replacement (under a fresh id — ids are never recycled).
struct RecordUpdate {
  RecordId id = kInvalidRecord;
  Record record;
};

/// What one Ingest/Update/Remove call did — cache effectiveness and
/// dirty-component scoping, for observability and tests.
struct IngestReport {
  size_t records_added = 0;
  size_t records_removed = 0;
  /// Candidate pairs that entered / left the maintained candidate set.
  size_t candidates_added = 0;
  size_t candidates_removed = 0;
  /// Matcher invocations this ingest (pairs scored for the first time under
  /// the current fingerprint).
  size_t pairs_scored = 0;
  /// Candidate pairs whose score was served from the cache (pairs that
  /// re-entered the candidate set after a retraction).
  size_t cache_hits = 0;
  /// Cached scores dropped because an endpoint was tombstoned (ids are
  /// never recycled, so an evicted entry can never be asked for again).
  size_t cache_evictions = 0;
  /// Components re-cleaned vs. spliced through unchanged.
  size_t components_rebuilt = 0;
  size_t components_reused = 0;
  double scoring_seconds = 0.0;
  double cleanup_seconds = 0.0;
};

/// \brief Incrementally maintained entity-group matching pipeline.
class IncrementalPipeline {
 public:
  explicit IncrementalPipeline(IncrementalPipelineConfig config);
  ~IncrementalPipeline();

  IncrementalPipeline(const IncrementalPipeline&) = delete;
  IncrementalPipeline& operator=(const IncrementalPipeline&) = delete;

  /// Append `batch` to the record set and bring blocking, scores and groups
  /// up to date. The matcher must be const-thread-safe (as in the batch
  /// pipeline). A matcher whose Fingerprint() differs from the previous
  /// ingest invalidates the score cache: every current candidate pair is
  /// rescored and every component re-cleaned. An empty batch is permitted
  /// (useful to swap matchers without new data).
  ///
  /// Fail-fast on a throwing matcher: an exception out of MatchProbability
  /// aborts the ingest with records and blocking indexes already updated
  /// but scores/groups not. The exception is swallowed, the pipeline is
  /// marked *poisoned*, and an Internal error is returned; every subsequent
  /// Ingest/Snapshot/Serialize returns the same clean error instead of
  /// computing on inconsistent state. Discard a poisoned pipeline (or
  /// restore from a checkpoint) — re-Ingesting the same batch would append
  /// its records a second time.
  Result<IngestReport> Ingest(const std::vector<Record>& batch,
                              const PairwiseMatcher& matcher);

  /// Tombstone the records in `ids` and bring blocking, scores and groups
  /// up to date in one dirty pass: their blocking keys are retracted (which
  /// can *re-admit* candidates a bucket cap or df bound had displaced — the
  /// matcher scores any such never-scored pair, hence the parameter), their
  /// cached scores are evicted, and every component that lost a node, an
  /// edge or a provenance bit is re-cleaned. Ids must be in range, alive
  /// and unique; violations return InvalidArgument with no state change
  /// (and no poisoning). Fingerprint and fail-fast semantics as Ingest.
  Result<IngestReport> Remove(const std::vector<RecordId>& ids,
                              const PairwiseMatcher& matcher);

  /// Apply corrections: for each entry, tombstone the live record
  /// `entry.id` and ingest `entry.record` under a fresh id, all in the same
  /// single dirty pass (exact remove + add — NOT an in-place edit, so every
  /// downstream invariant is the composition of the two proven paths). Id
  /// validation, fingerprint and fail-fast semantics as Remove.
  Result<IngestReport> Update(const std::vector<RecordUpdate>& batch,
                              const PairwiseMatcher& matcher);

  /// Current result, identical to a from-scratch EntityGroupPipeline::Run
  /// on the surviving (non-tombstoned) records (see file comment).
  /// Wall-clock fields report times accumulated across all ingests. Returns
  /// the poison error after an aborted ingest.
  Result<PipelineResult> Snapshot() const;

  /// OK, or the poison error describing why the pipeline must be discarded.
  Status status() const;

  /// All ingested records, in ingest order (ids are assigned contiguously).
  /// Tombstoned records keep their slot and payload — the table is
  /// append-only; consult alive() for liveness.
  const RecordTable& records() const { return records_; }

  /// Per-record liveness (1 = live, 0 = tombstoned), indexed by record id.
  const std::vector<char>& alive() const { return alive_; }
  bool is_alive(RecordId id) const {
    return id >= 0 && static_cast<size_t>(id) < alive_.size() &&
           alive_[static_cast<size_t>(id)] != 0;
  }
  size_t num_dead() const { return num_dead_; }
  size_t num_live() const { return records_.size() - num_dead_; }

  const IncrementalPipelineConfig& config() const { return config_; }

  /// Re-wire the observability sink. The registry pointer is runtime-only
  /// state — it never enters checkpoint bytes — so a pipeline restored via
  /// Deserialize()/LoadCheckpoint() always comes back uninstrumented; call
  /// this to resume recording into a registry the caller owns.
  void set_metrics(obs::MetricsRegistry* metrics) {
    config_.pipeline.metrics = metrics;
  }

  /// Cumulative matcher invocations / cache hits across all ingests.
  size_t total_matcher_calls() const { return total_matcher_calls_; }
  size_t total_cache_hits() const { return total_cache_hits_; }

  /// Fingerprint of the matcher used by the last Ingest ("" before the
  /// first). The checkpoint layer compares it against the serving matcher
  /// on load, because the score cache is only valid under its fingerprint.
  const std::string& fingerprint() const { return fingerprint_; }

  /// Serialize the complete pipeline state — config, records, tombstones,
  /// both blocking indexes, candidate provenance, the score cache, the
  /// match graph's positive edges and per-component cleanup results — such
  /// that
  /// Deserialize()->Snapshot() is bitwise-identical to Snapshot() here and
  /// further Ingest() calls behave exactly as they would have on this
  /// instance. Map-backed state is written in sorted key order, so equal
  /// logical states serialize to equal bytes. Framing (magic, version,
  /// checksum) is the caller's job; see serve/checkpoint.h. The tombstone
  /// section is written only when some record is dead — a tombstone-free
  /// pipeline emits the pre-tombstone (version 1) byte layout, so the
  /// framing version is a pure function of this state: see
  /// serve/checkpoint.h's version stamping. Returns the poison error after
  /// an aborted ingest (a poisoned state must never become a checkpoint).
  Status Serialize(BinaryWriter* writer) const;

  /// Rebuild a pipeline from Serialize() output. `version` is the framed
  /// format version the caller parsed (1 = pre-tombstone layout, 2 = with
  /// the tombstone section). `num_threads_override` replaces the serialized
  /// thread count when nonzero (thread count never affects results, only
  /// scheduling). Returns a clean error on truncated or inconsistent input.
  static Result<std::unique_ptr<IncrementalPipeline>> Deserialize(
      BinaryReader* reader, uint32_t version, size_t num_threads_override = 0);

 private:
  /// The whole mutation path shared by Ingest (no removals), Remove (no
  /// adds) and Update (both, one pass); the public entry points wrap it
  /// with id validation and the poison fail-fast.
  IngestReport MutateImpl(const std::vector<Record>& adds,
                          const std::vector<RecordId>& removal_ids,
                          const PairwiseMatcher& matcher);

  /// Removal ids must be in range, alive and duplicate-free — checked
  /// before any state changes so a bad call is rejected without poisoning.
  Status ValidateRemovals(const std::vector<RecordId>& ids) const;

  Status PoisonError() const;

  IncrementalPipelineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  RecordTable records_;
  /// Liveness per record id; tombstoned slots stay (ids never recycle).
  std::vector<char> alive_;
  size_t num_dead_ = 0;

  IncrementalIdOverlapIndex id_index_;
  IncrementalTokenOverlapIndex token_index_;

  /// Current candidate pairs -> blocker provenance bits.
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> candidate_prov_;
  /// Pair-score cache for the current matcher fingerprint.
  std::string fingerprint_;
  std::unordered_map<RecordPair, double, RecordPairHash> score_cache_;
  /// Candidate pairs currently at or above the match threshold.
  std::unordered_set<RecordPair, RecordPairHash> positives_;

  /// Component structure with cached per-component cleanup outcomes.
  GroupStore store_;

  /// Set when an ingest aborted mid-way (throwing matcher): records and
  /// blocking indexes were updated but scores/groups were not, so every
  /// state-observing operation refuses with a clean error.
  bool poisoned_ = false;
  std::string poison_reason_;

  size_t total_matcher_calls_ = 0;
  size_t total_cache_hits_ = 0;
  double scoring_seconds_total_ = 0.0;
  double cleanup_seconds_total_ = 0.0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_

#ifndef GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_
#define GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_

/// \file incremental_pipeline.h
/// Streaming ingestion for the entity-group pipeline. Record batches arrive
/// via Ingest() and three layers of state update in place instead of being
/// recomputed from scratch:
///
///  1. Blocking: incremental Token/ID Overlap inverted indexes
///     (blocking/incremental_index.h) emit only the candidate pairs the
///     batch adds or retracts.
///  2. Scoring: a pair-score cache keyed by (record_a, record_b,
///     matcher fingerprint) guarantees a pair is sent to the matcher at
///     most once while the fingerprint stays the same — re-admitted
///     candidates are served from the cache. The cache holds the current
///     fingerprint only: a fingerprint change clears it, so alternating
///     between matchers rescores on every swap.
///  3. Cleanup: new positive edges are unioned into the maintained
///     component structure (stream/group_store.h) and the Pre + GraLMatch
///     Graph Cleanup reruns only on *dirty* components (those that gained
///     or lost a node, an edge, or a provenance bit); untouched groups are
///     spliced through unchanged with their cached cleanup counters.
///
/// Batch-equivalence contract (enforced by tests/stream_test.cc): after any
/// sequence of ingests, Snapshot() — groups, predicted pairs, pre-cleanup
/// components and all cleanup counters — is identical to
/// EntityGroupPipeline::Run on the union of all batches with the same
/// blockers and matcher, at any num_threads. Only the wall-clock fields
/// differ in meaning: Snapshot() reports times accumulated across ingests.

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/incremental_index.h"
#include "core/pipeline.h"
#include "data/record.h"
#include "matching/matcher.h"
#include "stream/group_store.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;
class ThreadPool;

/// Parameters of the incremental pipeline: the batch pipeline's config plus
/// the blocking setup it maintains incrementally.
struct IncrementalPipelineConfig {
  /// Threshold, cleanup, pre-cleanup and num_threads semantics are exactly
  /// those of the batch EntityGroupPipeline.
  PipelineConfig pipeline;
  /// Token Overlap blocking parameters (num_threads is taken from
  /// `pipeline.num_threads`, not from here).
  TokenOverlapBlocker::Options token;
  bool use_token_blocker = true;
  bool use_id_blocker = true;
};

/// What one Ingest call did — cache effectiveness and dirty-component
/// scoping, for observability and tests.
struct IngestReport {
  size_t records_added = 0;
  /// Candidate pairs that entered / left the maintained candidate set.
  size_t candidates_added = 0;
  size_t candidates_removed = 0;
  /// Matcher invocations this ingest (pairs scored for the first time under
  /// the current fingerprint).
  size_t pairs_scored = 0;
  /// Candidate pairs whose score was served from the cache (pairs that
  /// re-entered the candidate set after a retraction).
  size_t cache_hits = 0;
  /// Components re-cleaned vs. spliced through unchanged.
  size_t components_rebuilt = 0;
  size_t components_reused = 0;
  double scoring_seconds = 0.0;
  double cleanup_seconds = 0.0;
};

/// \brief Incrementally maintained entity-group matching pipeline.
class IncrementalPipeline {
 public:
  explicit IncrementalPipeline(IncrementalPipelineConfig config);
  ~IncrementalPipeline();

  IncrementalPipeline(const IncrementalPipeline&) = delete;
  IncrementalPipeline& operator=(const IncrementalPipeline&) = delete;

  /// Append `batch` to the record set and bring blocking, scores and groups
  /// up to date. The matcher must be const-thread-safe (as in the batch
  /// pipeline). A matcher whose Fingerprint() differs from the previous
  /// ingest invalidates the score cache: every current candidate pair is
  /// rescored and every component re-cleaned. An empty batch is permitted
  /// (useful to swap matchers without new data).
  ///
  /// Fail-fast on a throwing matcher: an exception out of MatchProbability
  /// aborts the ingest with records and blocking indexes already updated
  /// but scores/groups not. The exception is swallowed, the pipeline is
  /// marked *poisoned*, and an Internal error is returned; every subsequent
  /// Ingest/Snapshot/Serialize returns the same clean error instead of
  /// computing on inconsistent state. Discard a poisoned pipeline (or
  /// restore from a checkpoint) — re-Ingesting the same batch would append
  /// its records a second time.
  Result<IngestReport> Ingest(const std::vector<Record>& batch,
                              const PairwiseMatcher& matcher);

  /// Current result, identical to a from-scratch EntityGroupPipeline::Run
  /// on the union of all ingested batches (see file comment). Wall-clock
  /// fields report times accumulated across all ingests. Returns the poison
  /// error after an aborted ingest.
  Result<PipelineResult> Snapshot() const;

  /// OK, or the poison error describing why the pipeline must be discarded.
  Status status() const;

  /// All ingested records, in ingest order (ids are assigned contiguously).
  const RecordTable& records() const { return records_; }

  const IncrementalPipelineConfig& config() const { return config_; }

  /// Cumulative matcher invocations / cache hits across all ingests.
  size_t total_matcher_calls() const { return total_matcher_calls_; }
  size_t total_cache_hits() const { return total_cache_hits_; }

  /// Fingerprint of the matcher used by the last Ingest ("" before the
  /// first). The checkpoint layer compares it against the serving matcher
  /// on load, because the score cache is only valid under its fingerprint.
  const std::string& fingerprint() const { return fingerprint_; }

  /// Serialize the complete pipeline state — config, records, both blocking
  /// indexes, candidate provenance, the score cache, the match graph's
  /// positive edges and per-component cleanup results — such that
  /// Deserialize()->Snapshot() is bitwise-identical to Snapshot() here and
  /// further Ingest() calls behave exactly as they would have on this
  /// instance. Map-backed state is written in sorted key order, so equal
  /// logical states serialize to equal bytes. Framing (magic, version,
  /// checksum) is the caller's job; see serve/checkpoint.h. Returns the
  /// poison error after an aborted ingest (a poisoned state must never
  /// become a checkpoint).
  Status Serialize(BinaryWriter* writer) const;

  /// Rebuild a pipeline from Serialize() output. `num_threads_override`
  /// replaces the serialized thread count when nonzero (thread count never
  /// affects results, only scheduling). Returns a clean error on truncated
  /// or inconsistent input.
  static Result<std::unique_ptr<IncrementalPipeline>> Deserialize(
      BinaryReader* reader, size_t num_threads_override = 0);

 private:
  /// The whole ingest path; Ingest wraps it with the poison fail-fast.
  IngestReport IngestImpl(const std::vector<Record>& batch,
                          const PairwiseMatcher& matcher);

  Status PoisonError() const;

  IncrementalPipelineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  RecordTable records_;

  IncrementalIdOverlapIndex id_index_;
  IncrementalTokenOverlapIndex token_index_;

  /// Current candidate pairs -> blocker provenance bits.
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> candidate_prov_;
  /// Pair-score cache for the current matcher fingerprint.
  std::string fingerprint_;
  std::unordered_map<RecordPair, double, RecordPairHash> score_cache_;
  /// Candidate pairs currently at or above the match threshold.
  std::unordered_set<RecordPair, RecordPairHash> positives_;

  /// Component structure with cached per-component cleanup outcomes.
  GroupStore store_;

  /// Set when an ingest aborted mid-way (throwing matcher): records and
  /// blocking indexes were updated but scores/groups were not, so every
  /// state-observing operation refuses with a clean error.
  bool poisoned_ = false;
  std::string poison_reason_;

  size_t total_matcher_calls_ = 0;
  size_t total_cache_hits_ = 0;
  double scoring_seconds_total_ = 0.0;
  double cleanup_seconds_total_ = 0.0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_STREAM_INCREMENTAL_PIPELINE_H_

#include "stream/group_store.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/binary_io.h"
#include "common/union_find.h"
#include "core/cleanup.h"

namespace gralmatch {

void WriteRecordPairs(const std::vector<RecordPair>& pairs,
                      BinaryWriter* writer) {
  writer->WriteU64(pairs.size());
  for (const RecordPair& pair : pairs) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
  }
}

Status ReadRecordPairs(BinaryReader* reader, size_t num_records,
                       std::vector<RecordPair>* pairs) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &count));
  pairs->clear();
  pairs->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    if (pair.a < 0 || pair.b < 0 ||
        static_cast<size_t>(pair.a) >= num_records ||
        static_cast<size_t>(pair.b) >= num_records) {
      return Status::IOError("corrupted checkpoint: record pair out of range");
    }
    pairs->push_back(pair);
  }
  return Status::OK();
}

Status ReadNodeIdVector(BinaryReader* reader, size_t num_records,
                        std::vector<NodeId>* nodes) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
  nodes->clear();
  nodes->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    NodeId node = -1;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&node));
    if (node < 0 || static_cast<size_t>(node) >= num_records) {
      return Status::IOError("corrupted checkpoint: node id " +
                             std::to_string(node) + " out of range");
    }
    nodes->push_back(node);
  }
  return Status::OK();
}

void WriteComponentState(const GroupStore::ComponentState& comp,
                         BinaryWriter* writer) {
  writer->WriteU64(comp.nodes.size());
  for (const NodeId u : comp.nodes) writer->WriteI32(u);
  WriteRecordPairs(comp.pairs, writer);
  writer->WriteU64(comp.groups.size());
  for (const auto& group : comp.groups) {
    writer->WriteU64(group.size());
    for (const NodeId u : group) writer->WriteI32(u);
  }
  writer->WriteU64(comp.stats.pre_cleanup_edges_removed);
  writer->WriteU64(comp.stats.min_cut_calls);
  writer->WriteU64(comp.stats.min_cut_edges_removed);
  writer->WriteU64(comp.stats.betweenness_calls);
  writer->WriteU64(comp.stats.betweenness_edges_removed);
}

Status ReadComponentState(BinaryReader* reader, size_t num_records,
                          GroupStore::ComponentState* comp) {
  GRALMATCH_RETURN_NOT_OK(ReadNodeIdVector(reader, num_records, &comp->nodes));
  GRALMATCH_RETURN_NOT_OK(ReadRecordPairs(reader, num_records, &comp->pairs));
  uint64_t num_groups = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &num_groups));
  comp->groups.clear();
  comp->groups.reserve(static_cast<size_t>(num_groups));
  for (uint64_t g = 0; g < num_groups; ++g) {
    std::vector<NodeId> group;
    GRALMATCH_RETURN_NOT_OK(ReadNodeIdVector(reader, num_records, &group));
    comp->groups.push_back(std::move(group));
  }
  uint64_t stat = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&stat));
  comp->stats.pre_cleanup_edges_removed = static_cast<size_t>(stat);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&stat));
  comp->stats.min_cut_calls = static_cast<size_t>(stat);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&stat));
  comp->stats.min_cut_edges_removed = static_cast<size_t>(stat);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&stat));
  comp->stats.betweenness_calls = static_cast<size_t>(stat);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&stat));
  comp->stats.betweenness_edges_removed = static_cast<size_t>(stat);
  return Status::OK();
}

void GroupStore::EnsureNumRecords(size_t num_records) {
  if (comp_of_node_.size() < num_records) {
    comp_of_node_.resize(num_records, -1);
  }
}

void GroupStore::RebuildComponent(ComponentState* comp,
                                  const ProvenanceFn& prov_of,
                                  const PipelineConfig& config,
                                  ThreadPool* pool) {
  // Nodes are sorted, pairs are sorted: inserting edges in pair order
  // reproduces the edge-id order of a from-scratch run, and the monotone
  // node remap preserves every comparison the cleanup tie-breaks on.
  Graph local(comp->nodes.size());
  auto local_id = [comp](NodeId u) {
    return static_cast<NodeId>(
        std::lower_bound(comp->nodes.begin(), comp->nodes.end(), u) -
        comp->nodes.begin());
  };
  std::vector<uint32_t> edge_provenance;
  edge_provenance.reserve(comp->pairs.size());
  for (const RecordPair& pair : comp->pairs) {
    // Discard audited: endpoints are remapped members of this component, so
    // AddEdge cannot fail; the local edge id is not needed.
    (void)local.AddEdge(local_id(pair.a), local_id(pair.b));
    edge_provenance.push_back(prov_of(pair));
  }

  comp->stats = CleanupStats();
  PreCleanup(&local, edge_provenance, config.pre_cleanup_threshold,
             &comp->stats);
  GraLMatchCleanup cleanup(config.cleanup);
  std::vector<std::vector<NodeId>> local_groups =
      cleanup.Run(&local, &comp->stats, pool);
  comp->stats.seconds = 0.0;  // counters only; the caller accounts wall-clock

  comp->groups.clear();
  comp->groups.reserve(local_groups.size());
  for (auto& group : local_groups) {
    for (NodeId& u : group) u = comp->nodes[static_cast<size_t>(u)];
    comp->groups.push_back(std::move(group));
  }
}

GroupStore::ApplyReport GroupStore::Apply(
    const std::vector<RecordPair>& pos_added,
    const std::vector<RecordPair>& pos_removed,
    const std::vector<RecordPair>& pos_prov_changed, bool rebuild_all,
    const ProvenanceFn& prov_of, const PipelineConfig& config,
    ThreadPool* pool) {
  ApplyReport report;

  // Dirty components: every component touching an affected node, i.e. an
  // endpoint of an edge that appeared, disappeared, or changed provenance
  // (provenance feeds the Pre Cleanup). With rebuild_all every component is
  // conservatively dirty.
  std::unordered_set<int32_t> dirty_comps;
  std::vector<NodeId> loose_nodes;  // affected nodes outside any component
  auto touch_node = [&](NodeId u) {
    const int32_t cid = comp_of_node_[static_cast<size_t>(u)];
    if (cid >= 0) {
      dirty_comps.insert(cid);
    } else {
      loose_nodes.push_back(u);
    }
  };
  for (const RecordPair& pair : pos_added) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_removed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_prov_changed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  if (rebuild_all) {
    for (const auto& [cid, comp] : comps_) dirty_comps.insert(cid);
  }
  report.components_reused = comps_.size() - dirty_comps.size();

  if (!dirty_comps.empty() || !loose_nodes.empty()) {
    // Union the dirty region's nodes and surviving pairs, recompute its
    // connectivity, and re-clean each resulting component. Every removed
    // pair's endpoints are affected, so removals never touch a clean
    // component; every added pair's endpoints are in the region by
    // construction.
    std::vector<NodeId> region_nodes = loose_nodes;
    std::vector<RecordPair> region_pairs = pos_added;
    const std::unordered_set<RecordPair, RecordPairHash> removed_set(
        pos_removed.begin(), pos_removed.end());
    for (const int32_t cid : dirty_comps) {
      const ComponentState& comp = comps_.at(cid);
      region_nodes.insert(region_nodes.end(), comp.nodes.begin(),
                          comp.nodes.end());
      for (const RecordPair& pair : comp.pairs) {
        if (!removed_set.count(pair)) region_pairs.push_back(pair);
      }
    }
    std::sort(region_nodes.begin(), region_nodes.end());
    region_nodes.erase(std::unique(region_nodes.begin(), region_nodes.end()),
                       region_nodes.end());
    auto region_index = [&region_nodes](NodeId u) {
      return static_cast<size_t>(
          std::lower_bound(region_nodes.begin(), region_nodes.end(), u) -
          region_nodes.begin());
    };
    UnionFind uf(region_nodes.size());
    for (const RecordPair& pair : region_pairs) {
      uf.Union(region_index(pair.a), region_index(pair.b));
    }

    for (const int32_t cid : dirty_comps) comps_.erase(cid);
    std::unordered_map<size_t, int32_t> comp_of_root;
    std::vector<int32_t> rebuilt_ids;
    for (size_t k = 0; k < region_nodes.size(); ++k) {
      const NodeId u = region_nodes[k];
      if (uf.SetSize(k) < 2) {
        comp_of_node_[static_cast<size_t>(u)] = -1;
        continue;
      }
      const size_t root = uf.Find(k);
      auto [it, inserted] = comp_of_root.emplace(root, next_comp_id_);
      if (inserted) {
        ++next_comp_id_;
        rebuilt_ids.push_back(it->second);
      }
      comp_of_node_[static_cast<size_t>(u)] = it->second;
      comps_[it->second].nodes.push_back(u);  // ascending: k is ascending
    }
    for (const RecordPair& pair : region_pairs) {
      comps_[comp_of_node_[static_cast<size_t>(pair.a)]].pairs.push_back(pair);
    }
    for (const int32_t cid : rebuilt_ids) {
      ComponentState& comp = comps_[cid];
      std::sort(comp.pairs.begin(), comp.pairs.end());
      RebuildComponent(&comp, prov_of, config, pool);
    }
    report.components_rebuilt = rebuilt_ids.size();
  }
  return report;
}

void GroupStore::FillSnapshot(size_t num_records, const std::vector<char>* alive,
                              PipelineResult* result) const {
  // Components (and groups) in the batch pipeline's canonical order:
  // components by smallest contained node — exactly the order a node scan
  // produces — and groups sorted by their smallest node afterwards.
  for (size_t u = 0; u < num_records; ++u) {
    if (alive != nullptr && !(*alive)[u]) continue;
    const int32_t cid = comp_of_node_[u];
    if (cid < 0) {
      result->pre_cleanup_components.push_back({static_cast<NodeId>(u)});
      result->groups.push_back({static_cast<NodeId>(u)});
      continue;
    }
    const ComponentState& comp = comps_.at(cid);
    if (comp.nodes.front() != static_cast<NodeId>(u)) continue;
    result->pre_cleanup_components.push_back(comp.nodes);
    for (const auto& group : comp.groups) result->groups.push_back(group);
  }
  std::sort(result->groups.begin(), result->groups.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });

  for (const auto& [cid, comp] : comps_) {
    result->cleanup_stats.pre_cleanup_edges_removed +=
        comp.stats.pre_cleanup_edges_removed;
    result->cleanup_stats.min_cut_calls += comp.stats.min_cut_calls;
    result->cleanup_stats.min_cut_edges_removed +=
        comp.stats.min_cut_edges_removed;
    result->cleanup_stats.betweenness_calls += comp.stats.betweenness_calls;
    result->cleanup_stats.betweenness_edges_removed +=
        comp.stats.betweenness_edges_removed;
  }
}

void GroupStore::Save(BinaryWriter* writer) const {
  writer->WriteU64(comp_of_node_.size());
  for (int32_t cid : comp_of_node_) writer->WriteI32(cid);
  std::vector<int32_t> comp_ids;
  comp_ids.reserve(comps_.size());
  for (const auto& [cid, comp] : comps_) comp_ids.push_back(cid);
  std::sort(comp_ids.begin(), comp_ids.end());
  writer->WriteU64(comp_ids.size());
  for (int32_t cid : comp_ids) {
    writer->WriteI32(cid);
    WriteComponentState(comps_.at(cid), writer);
  }
  writer->WriteI32(next_comp_id_);
}

Status GroupStore::Load(BinaryReader* reader, size_t num_records,
                        const IsPositiveFn& is_positive) {
  comp_of_node_.clear();
  comps_.clear();
  next_comp_id_ = 0;

  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
  if (count != num_records) {
    return Status::IOError(
        "corrupted checkpoint: component map size disagrees with the record "
        "table");
  }
  comp_of_node_.resize(static_cast<size_t>(count));
  for (auto& cid : comp_of_node_) {
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&cid));
  }

  uint64_t num_comps = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &num_comps));
  for (uint64_t k = 0; k < num_comps; ++k) {
    int32_t cid = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&cid));
    ComponentState comp;
    GRALMATCH_RETURN_NOT_OK(ReadComponentState(reader, num_records, &comp));
    if (comp.nodes.empty()) {
      return Status::IOError("corrupted checkpoint: empty component");
    }
    if (!comps_.emplace(cid, std::move(comp)).second) {
      return Status::IOError("corrupted checkpoint: duplicate component id");
    }
  }
  for (size_t r = 0; r < comp_of_node_.size(); ++r) {
    const int32_t cid = comp_of_node_[r];
    if (cid >= 0 && !comps_.count(cid)) {
      return Status::IOError(
          "corrupted checkpoint: record mapped to a missing component");
    }
  }
  // FillSnapshot keys each component's emission off its smallest node and
  // RebuildComponent binary-searches the node list, so the list must be
  // sorted and unique and agree with the membership map.
  for (const auto& [cid, comp] : comps_) {
    if (!std::is_sorted(comp.nodes.begin(), comp.nodes.end()) ||
        std::adjacent_find(comp.nodes.begin(), comp.nodes.end()) !=
            comp.nodes.end()) {
      return Status::IOError(
          "corrupted checkpoint: component node list is not sorted unique");
    }
    for (const NodeId node : comp.nodes) {
      if (comp_of_node_[static_cast<size_t>(node)] != cid) {
        return Status::IOError(
            "corrupted checkpoint: component node list disagrees with the "
            "membership map");
      }
    }
  }
  GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&next_comp_id_));
  return Validate(is_positive);
}

Status GroupStore::InsertComponent(int32_t cid, ComponentState comp,
                                   size_t num_records) {
  EnsureNumRecords(num_records);
  if (comp.nodes.empty()) {
    return Status::IOError("corrupted checkpoint: empty component");
  }
  if (!std::is_sorted(comp.nodes.begin(), comp.nodes.end()) ||
      std::adjacent_find(comp.nodes.begin(), comp.nodes.end()) !=
          comp.nodes.end()) {
    return Status::IOError(
        "corrupted checkpoint: component node list is not sorted unique");
  }
  for (const NodeId node : comp.nodes) {
    if (node < 0 || static_cast<size_t>(node) >= num_records) {
      return Status::IOError("corrupted checkpoint: node id out of range");
    }
    if (comp_of_node_[static_cast<size_t>(node)] != -1) {
      return Status::IOError(
          "corrupted checkpoint: record claimed by two components");
    }
  }
  if (comps_.count(cid)) {
    return Status::IOError("corrupted checkpoint: duplicate component id");
  }
  for (const NodeId node : comp.nodes) {
    comp_of_node_[static_cast<size_t>(node)] = cid;
  }
  comps_.emplace(cid, std::move(comp));
  return Status::OK();
}

Status GroupStore::Validate(const IsPositiveFn& is_positive) const {
  // Every component edge must be a current positive pair with both
  // endpoints inside the component — an edge into another component would
  // index past the local UnionFind on the next dirty rebuild. The next id
  // must be fresh: colliding with a live component would make a later
  // rebuild silently merge two components' state.
  for (const auto& [cid, comp] : comps_) {
    for (const RecordPair& pair : comp.pairs) {
      if (!is_positive(pair)) {
        return Status::IOError(
            "corrupted checkpoint: component edge is not a positive pair");
      }
      if (!std::binary_search(comp.nodes.begin(), comp.nodes.end(), pair.a) ||
          !std::binary_search(comp.nodes.begin(), comp.nodes.end(), pair.b)) {
        return Status::IOError(
            "corrupted checkpoint: component edge endpoint outside the "
            "component");
      }
    }
    if (cid < 0 || cid >= next_comp_id_) {
      return Status::IOError(
          "corrupted checkpoint: component id outside [0, next_comp_id)");
    }
  }
  return Status::OK();
}

}  // namespace gralmatch

#include "stream/incremental_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/stopwatch.h"
#include "core/score_batching.h"
#include "exec/parallel.h"
#include "obs/metrics.h"

namespace gralmatch {

IncrementalPipeline::IncrementalPipeline(IncrementalPipelineConfig config)
    : config_(config),
      pool_(MaybeMakePool(config.pipeline.num_threads)),
      token_index_(config.token) {}

IncrementalPipeline::~IncrementalPipeline() = default;

Status IncrementalPipeline::PoisonError() const {
  return Status::Internal(
      "incremental pipeline is poisoned (" + poison_reason_ +
      "); its state is inconsistent — discard this instance and restore "
      "from a checkpoint");
}

Status IncrementalPipeline::status() const {
  return poisoned_ ? PoisonError() : Status::OK();
}

Status IncrementalPipeline::ValidateRemovals(
    const std::vector<RecordId>& ids) const {
  std::unordered_set<RecordId> seen;
  for (RecordId id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= records_.size()) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": id out of range");
    }
    if (!alive_[static_cast<size_t>(id)]) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": already tombstoned");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("cannot remove record " +
                                     std::to_string(id) +
                                     ": duplicated in the removal set");
    }
  }
  return Status::OK();
}

Result<IngestReport> IncrementalPipeline::Ingest(
    const std::vector<Record>& batch, const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  try {
    return MutateImpl(batch, {}, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("an ingest aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "an ingest aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

Result<IngestReport> IncrementalPipeline::Remove(
    const std::vector<RecordId>& ids, const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  GRALMATCH_RETURN_NOT_OK(ValidateRemovals(ids));
  try {
    return MutateImpl({}, ids, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("a removal aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "a removal aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

Result<IngestReport> IncrementalPipeline::Update(
    const std::vector<RecordUpdate>& batch, const PairwiseMatcher& matcher) {
  if (poisoned_) return PoisonError();
  std::vector<RecordId> ids;
  std::vector<Record> adds;
  ids.reserve(batch.size());
  adds.reserve(batch.size());
  for (const RecordUpdate& update : batch) {
    ids.push_back(update.id);
    adds.push_back(update.record);
  }
  GRALMATCH_RETURN_NOT_OK(ValidateRemovals(ids));
  try {
    return MutateImpl(adds, ids, matcher);
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_reason_ = std::string("an update aborted mid-way: ") + e.what();
    return PoisonError();
  } catch (...) {
    poisoned_ = true;
    poison_reason_ = "an update aborted mid-way: non-standard exception";
    return PoisonError();
  }
}

IngestReport IncrementalPipeline::MutateImpl(
    const std::vector<Record>& adds, const std::vector<RecordId>& removal_ids,
    const PairwiseMatcher& matcher) {
  const obs::PipelineMetrics metrics =
      obs::PipelineMetrics::Create(config_.pipeline.metrics);
  IngestReport report;
  report.records_added = adds.size();
  report.records_removed = removal_ids.size();
  for (const Record& rec : adds) records_.Add(rec);
  alive_.resize(records_.size(), 1);
  for (RecordId id : removal_ids) alive_[static_cast<size_t>(id)] = 0;
  num_dead_ += removal_ids.size();
  store_.EnsureNumRecords(records_.size());

  // A fingerprint change means every cached score is stale: clear the cache
  // and re-derive the positive set and every component from fresh scores.
  const std::string fingerprint = matcher.Fingerprint();
  const bool rescore_all = !fingerprint_.empty() && fingerprint != fingerprint_;
  if (rescore_all) score_cache_.clear();
  fingerprint_ = fingerprint;

  // Blocking: fold each index's deltas into the candidate set, snapshotting
  // each touched pair's pre-mutation provenance once. Retraction runs
  // before absorption per index; the candidate transitions below diff the
  // pre-mutation snapshot against the final state, so they are independent
  // of this internal order.
  Stopwatch blocking_watch;
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_prov;
  auto apply_delta = [&](const CandidateDelta& delta, uint32_t bit) {
    for (const RecordPair& pair : delta.added) {
      uint32_t& prov = candidate_prov_[pair];
      old_prov.emplace(pair, prov);
      prov |= bit;
    }
    for (const RecordPair& pair : delta.removed) {
      auto it = candidate_prov_.find(pair);
      old_prov.emplace(pair, it->second);
      it->second &= ~bit;
    }
  };
  if (config_.use_id_blocker) {
    apply_delta(id_index_.RemoveRecords(records_, removal_ids, pool_.get()),
                kBlockerIdOverlap);
    apply_delta(id_index_.AddRecords(records_, pool_.get()), kBlockerIdOverlap);
  }
  if (config_.use_token_blocker) {
    apply_delta(token_index_.RemoveRecords(records_, removal_ids, pool_.get()),
                kBlockerTokenOverlap);
    apply_delta(token_index_.AddRecords(records_, pool_.get()),
                kBlockerTokenOverlap);
  }

  std::vector<RecordPair> cand_added, cand_removed, prov_changed;
  for (const auto& [pair, before] : old_prov) {
    const uint32_t now = candidate_prov_.at(pair);
    if (before == 0 && now != 0) {
      cand_added.push_back(pair);
    } else if (before != 0 && now == 0) {
      cand_removed.push_back(pair);
      candidate_prov_.erase(pair);
    } else if (before != now) {
      prov_changed.push_back(pair);
    }
  }
  std::sort(cand_added.begin(), cand_added.end());
  std::sort(cand_removed.begin(), cand_removed.end());
  std::sort(prov_changed.begin(), prov_changed.end());
  report.candidates_added = cand_added.size();
  report.candidates_removed = cand_removed.size();
  if (metrics.blocking_seconds != nullptr) {
    metrics.blocking_seconds->Observe(blocking_watch.ElapsedSeconds());
  }

  // Evict cached scores touching a tombstoned record. Ids never recycle, so
  // an evicted entry can never be asked for again; surviving entries keep
  // serving re-admitted pairs. Unaffected pairs are deliberately NOT
  // rescored — deletion must not spend matcher calls on them.
  if (!removal_ids.empty() && !score_cache_.empty()) {
    std::vector<char> removed_now(records_.size(), 0);
    for (RecordId id : removal_ids) removed_now[static_cast<size_t>(id)] = 1;
    for (auto it = score_cache_.begin(); it != score_cache_.end();) {
      if (removed_now[static_cast<size_t>(it->first.a)] ||
          removed_now[static_cast<size_t>(it->first.b)]) {
        it = score_cache_.erase(it);
        ++report.cache_evictions;
      } else {
        ++it;
      }
    }
  }

  // Scoring: only pairs without a cached score under the current
  // fingerprint reach the matcher. Re-admitted pairs are cache hits.
  std::vector<RecordPair> to_score;
  if (rescore_all) {
    to_score.reserve(candidate_prov_.size());
    for (const auto& [pair, prov] : candidate_prov_) to_score.push_back(pair);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.count(pair)) {
        ++report.cache_hits;
      } else {
        to_score.push_back(pair);
      }
    }
  }
  std::sort(to_score.begin(), to_score.end());
  // Batched scoring (core/score_batching.h): the sorted to-score list is cut
  // into score_batch_size chunks, one ScoreBatch call each, fanned out over
  // the pool — bitwise-identical to the per-pair walk at any thread count.
  Stopwatch scoring_watch;
  std::vector<double> scores(to_score.size(), 0.0);
  {
    CascadeStatsScope cascade_scope(matcher, metrics.cascade_gate_resolved,
                                    metrics.cascade_escalated);
    ScorePairsBatched(pool_.get(), records_, matcher,
                      Span<const RecordPair>(to_score.data(), to_score.size()),
                      config_.pipeline.score_batch_size,
                      Span<double>(scores.data(), scores.size()));
  }
  report.scoring_seconds = scoring_watch.ElapsedSeconds();
  scoring_seconds_total_ += report.scoring_seconds;
  for (size_t k = 0; k < to_score.size(); ++k) {
    score_cache_[to_score[k]] = scores[k];
  }
  report.pairs_scored = to_score.size();
  total_matcher_calls_ += to_score.size();
  total_cache_hits_ += report.cache_hits;

  // Positive-edge transitions.
  const double threshold = config_.pipeline.match_threshold;
  std::vector<RecordPair> pos_added, pos_removed, pos_prov_changed;
  if (rescore_all) {
    std::unordered_set<RecordPair, RecordPairHash> now_positive;
    for (const auto& [pair, prov] : candidate_prov_) {
      if (score_cache_.at(pair) >= threshold) now_positive.insert(pair);
    }
    for (const RecordPair& pair : now_positive) {
      if (!positives_.count(pair)) pos_added.push_back(pair);
    }
    for (const RecordPair& pair : positives_) {
      if (!now_positive.count(pair)) pos_removed.push_back(pair);
    }
    positives_ = std::move(now_positive);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.at(pair) >= threshold) {
        positives_.insert(pair);
        pos_added.push_back(pair);
      }
    }
    for (const RecordPair& pair : cand_removed) {
      if (positives_.erase(pair) > 0) pos_removed.push_back(pair);
    }
    for (const RecordPair& pair : prov_changed) {
      if (positives_.count(pair)) pos_prov_changed.push_back(pair);
    }
  }

  Stopwatch cleanup_watch;
  GroupStore::ApplyReport cleanup = store_.Apply(
      pos_added, pos_removed, pos_prov_changed, rescore_all,
      [this](const RecordPair& pair) { return candidate_prov_.at(pair); },
      config_.pipeline, pool_.get());
  report.components_rebuilt = cleanup.components_rebuilt;
  report.components_reused = cleanup.components_reused;
  report.cleanup_seconds = cleanup_watch.ElapsedSeconds();
  cleanup_seconds_total_ += report.cleanup_seconds;

  // Observability rollup (null-guarded, inert: the report itself is the
  // semantic output and is untouched by whether a registry is wired).
  if (config_.pipeline.metrics != nullptr) {
    metrics.scoring_seconds->Observe(report.scoring_seconds);
    metrics.cleanup_seconds->Observe(report.cleanup_seconds);
    metrics.mutations->Increment();
    metrics.records_added->Increment(report.records_added);
    metrics.records_removed->Increment(report.records_removed);
    metrics.pairs_scored->Increment(report.pairs_scored);
    metrics.cache_hits->Increment(report.cache_hits);
    metrics.cache_evictions->Increment(report.cache_evictions);
    metrics.components_rebuilt->Increment(report.components_rebuilt);
    metrics.components_reused->Increment(report.components_reused);
  }
  return report;
}

Result<PipelineResult> IncrementalPipeline::Snapshot() const {
  if (poisoned_) return PoisonError();
  PipelineResult result;
  result.predicted_pairs.assign(positives_.begin(), positives_.end());
  std::sort(result.predicted_pairs.begin(), result.predicted_pairs.end());
  store_.FillSnapshot(records_.size(), &alive_, &result);
  result.cleanup_stats.seconds = cleanup_seconds_total_;
  result.inference_seconds = scoring_seconds_total_;
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------------

namespace {

/// Sorted snapshot of an unordered pair-keyed map (deterministic bytes).
template <typename V>
std::vector<std::pair<RecordPair, V>> SortedEntries(
    const std::unordered_map<RecordPair, V, RecordPairHash>& map) {
  std::vector<std::pair<RecordPair, V>> entries(map.begin(), map.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace

Status IncrementalPipeline::Serialize(BinaryWriter* writer) const {
  if (poisoned_) return PoisonError();
  // Configuration.
  writer->WriteU64(config_.pipeline.cleanup.gamma);
  writer->WriteU64(config_.pipeline.cleanup.mu);
  writer->WriteDouble(config_.pipeline.match_threshold);
  writer->WriteU64(config_.pipeline.pre_cleanup_threshold);
  writer->WriteU64(config_.pipeline.num_threads);
  writer->WriteU64(config_.token.top_n);
  writer->WriteU64(config_.token.min_overlap);
  writer->WriteDouble(config_.token.max_token_df);
  writer->WriteU8(config_.use_token_blocker ? 1 : 0);
  writer->WriteU8(config_.use_id_blocker ? 1 : 0);

  // Records, in ingest order.
  writer->WriteU64(records_.size());
  for (const Record& rec : records_.records()) {
    writer->WriteI32(rec.source());
    writer->WriteU8(static_cast<uint8_t>(rec.kind()));
    writer->WriteU64(rec.attributes().size());
    for (const auto& [name, value] : rec.attributes()) {
      writer->WriteString(name);
      writer->WriteString(value);
    }
  }

  // Tombstones: sorted dead record ids. Written only when some record is
  // dead — a tombstone-free pipeline keeps emitting the pre-tombstone
  // (version 1) byte layout, and the framing layer stamps the version to
  // match (serve/checkpoint.h).
  if (num_dead_ > 0) {
    writer->WriteU64(num_dead_);
    for (size_t r = 0; r < alive_.size(); ++r) {
      if (!alive_[r]) writer->WriteI32(static_cast<RecordId>(r));
    }
  }

  // Blocking indexes.
  id_index_.SaveState(writer);
  token_index_.SaveState(writer);

  // Scores and candidate state.
  writer->WriteString(fingerprint_);
  auto prov_entries = SortedEntries(candidate_prov_);
  writer->WriteU64(prov_entries.size());
  for (const auto& [pair, prov] : prov_entries) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteU32(prov);
  }
  auto score_entries = SortedEntries(score_cache_);
  writer->WriteU64(score_entries.size());
  for (const auto& [pair, score] : score_entries) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteDouble(score);
  }
  std::vector<RecordPair> positives(positives_.begin(), positives_.end());
  std::sort(positives.begin(), positives.end());
  WriteRecordPairs(positives, writer);

  // Component structure with cached cleanup outcomes.
  store_.Save(writer);

  // Cumulative counters.
  writer->WriteU64(total_matcher_calls_);
  writer->WriteU64(total_cache_hits_);
  writer->WriteDouble(scoring_seconds_total_);
  writer->WriteDouble(cleanup_seconds_total_);
  return Status::OK();
}

Result<std::unique_ptr<IncrementalPipeline>> IncrementalPipeline::Deserialize(
    BinaryReader* reader, uint32_t version, size_t num_threads_override) {
  IncrementalPipelineConfig config;
  uint64_t u = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.cleanup.gamma = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.cleanup.mu = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&config.pipeline.match_threshold));
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.pre_cleanup_threshold = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.num_threads = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.token.top_n = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.token.min_overlap = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&config.token.max_token_df));
  uint8_t flag = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&flag));
  config.use_token_blocker = flag != 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&flag));
  config.use_id_blocker = flag != 0;
  if (num_threads_override > 0) {
    config.pipeline.num_threads = num_threads_override;
  }

  auto pipeline = std::make_unique<IncrementalPipeline>(config);

  uint64_t num_records = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(13, &num_records));
  for (uint64_t r = 0; r < num_records; ++r) {
    int32_t source = 0;
    uint8_t kind = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&source));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&kind));
    if (kind > static_cast<uint8_t>(RecordKind::kProduct)) {
      return Status::IOError("corrupted checkpoint: unknown record kind " +
                             std::to_string(kind));
    }
    Record rec(static_cast<SourceId>(source), static_cast<RecordKind>(kind));
    uint64_t num_attrs = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &num_attrs));
    for (uint64_t a = 0; a < num_attrs; ++a) {
      std::string name, value;
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&name));
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&value));
      rec.Set(name, value);
    }
    pipeline->records_.Add(std::move(rec));
  }
  const size_t n = pipeline->records_.size();
  pipeline->alive_.assign(n, 1);

  // Tombstone section (format v2+): sorted dead record ids. Version 1
  // images predate tombstones, so every record is alive.
  if (version >= 2) {
    uint64_t dead_count = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &dead_count));
    RecordId prev = -1;
    for (uint64_t k = 0; k < dead_count; ++k) {
      RecordId id = kInvalidRecord;
      GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&id));
      if (id <= prev || static_cast<size_t>(id) >= n) {
        return Status::IOError(
            "corrupted checkpoint: tombstone ids must be strictly ascending "
            "record ids");
      }
      pipeline->alive_[static_cast<size_t>(id)] = 0;
      prev = id;
    }
    pipeline->num_dead_ = static_cast<size_t>(dead_count);
  }

  GRALMATCH_RETURN_NOT_OK(pipeline->id_index_.LoadState(reader));
  GRALMATCH_RETURN_NOT_OK(pipeline->token_index_.LoadState(reader));
  if (pipeline->id_index_.num_records() != n ||
      pipeline->token_index_.num_records() != n) {
    return Status::IOError(
        "corrupted checkpoint: blocking index record counts disagree with "
        "the record table");
  }
  // LoadState defaults every record to alive; the max-df cap tracks the
  // live count, which only the pipeline's tombstone set knows.
  pipeline->token_index_.SetNumLive(n - pipeline->num_dead_);

  GRALMATCH_RETURN_NOT_OK(reader->ReadString(&pipeline->fingerprint_));
  // Pair ids feed unchecked records_.at() lookups in Ingest, so they are
  // range-validated here like every other record reference. Tombstoned
  // records retract every pair they touch, so a candidate, cached score or
  // positive referencing one is corruption.
  auto check_pair = [n, &pipeline](const RecordPair& pair) {
    if (pair.a < 0 || pair.b < 0 || static_cast<size_t>(pair.a) >= n ||
        static_cast<size_t>(pair.b) >= n) {
      return Status::IOError("corrupted checkpoint: record pair out of range");
    }
    if (!pipeline->alive_[static_cast<size_t>(pair.a)] ||
        !pipeline->alive_[static_cast<size_t>(pair.b)]) {
      return Status::IOError(
          "corrupted checkpoint: record pair references a tombstoned record");
    }
    return Status::OK();
  };
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(12, &count));
  pipeline->candidate_prov_.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    uint32_t prov = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&prov));
    GRALMATCH_RETURN_NOT_OK(check_pair(pair));
    pipeline->candidate_prov_[pair] = prov;
  }
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &count));
  pipeline->score_cache_.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    double score = 0.0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&score));
    GRALMATCH_RETURN_NOT_OK(check_pair(pair));
    pipeline->score_cache_[pair] = score;
  }
  std::vector<RecordPair> positives;
  GRALMATCH_RETURN_NOT_OK(ReadRecordPairs(reader, n, &positives));
  pipeline->positives_.insert(positives.begin(), positives.end());

  // Every current candidate has a cached score and every positive pair is a
  // current candidate — Ingest() dereferences both unconditionally, so a
  // checkpoint violating either invariant must be rejected here, not crash
  // there.
  const uint32_t known_bits =
      (config.use_id_blocker ? kBlockerIdOverlap : 0u) |
      (config.use_token_blocker ? kBlockerTokenOverlap : 0u);
  for (const auto& [pair, prov] : pipeline->candidate_prov_) {
    if (prov == 0 || (prov & ~known_bits) != 0) {
      return Status::IOError(
          "corrupted checkpoint: candidate provenance bits disagree with the "
          "configured blockers");
    }
    if (!pipeline->score_cache_.count(pair)) {
      return Status::IOError(
          "corrupted checkpoint: candidate pair without a cached score");
    }
  }
  for (const RecordPair& pair : pipeline->positives_) {
    if (!pipeline->candidate_prov_.count(pair)) {
      return Status::IOError(
          "corrupted checkpoint: positive pair missing from the candidate "
          "set");
    }
  }
  // The candidate set must be exactly what the restored blocking indexes
  // currently produce, bit by bit: a future AddRecords retraction looks the
  // pair up in candidate_prov_ unchecked, so an index/pipeline mismatch
  // would dereference end().
  auto check_index = [&pipeline](const std::vector<RecordPair>& index_pairs,
                                 uint32_t bit) {
    size_t with_bit = 0;
    for (const auto& [pair, prov] : pipeline->candidate_prov_) {
      (void)pair;
      if (prov & bit) ++with_bit;
    }
    if (with_bit != index_pairs.size()) {
      return Status::IOError(
          "corrupted checkpoint: blocking index pair set disagrees with the "
          "candidate provenance");
    }
    for (const RecordPair& pair : index_pairs) {
      auto it = pipeline->candidate_prov_.find(pair);
      if (it == pipeline->candidate_prov_.end() || (it->second & bit) == 0) {
        return Status::IOError(
            "corrupted checkpoint: blocking index pair missing from the "
            "candidate set");
      }
    }
    return Status::OK();
  };
  if (config.use_id_blocker) {
    GRALMATCH_RETURN_NOT_OK(
        check_index(pipeline->id_index_.CurrentPairs(), kBlockerIdOverlap));
  }
  if (config.use_token_blocker) {
    GRALMATCH_RETURN_NOT_OK(check_index(pipeline->token_index_.CurrentPairs(),
                                        kBlockerTokenOverlap));
  }
  // An empty fingerprint means no Ingest ever ran (Ingest sets it
  // unconditionally), so every other piece of state must be empty too —
  // otherwise cached scores could never be invalidated by a fingerprint
  // change.
  if (pipeline->fingerprint_.empty() &&
      (n != 0 || !pipeline->candidate_prov_.empty() ||
       !pipeline->score_cache_.empty() || !pipeline->positives_.empty())) {
    return Status::IOError(
        "corrupted checkpoint: pre-ingest fingerprint with non-empty state");
  }

  GRALMATCH_RETURN_NOT_OK(pipeline->store_.Load(
      reader, n, [&pipeline](const RecordPair& pair) {
        return pipeline->positives_.count(pair) > 0;
      }));
  // A tombstoned record has lost every positive edge, so it must have left
  // its component (FillSnapshot relies on this to skip dead singletons).
  for (size_t r = 0; r < n; ++r) {
    if (!pipeline->alive_[r] && pipeline->store_.comp_of_node()[r] >= 0) {
      return Status::IOError(
          "corrupted checkpoint: tombstoned record still inside a component");
    }
  }

  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  pipeline->total_matcher_calls_ = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  pipeline->total_cache_hits_ = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&pipeline->scoring_seconds_total_));
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&pipeline->cleanup_seconds_total_));
  return pipeline;
}

}  // namespace gralmatch

#include "stream/incremental_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/stopwatch.h"
#include "common/union_find.h"
#include "core/cleanup.h"
#include "exec/parallel.h"
#include "graph/graph.h"

namespace gralmatch {

IncrementalPipeline::IncrementalPipeline(IncrementalPipelineConfig config)
    : config_(config),
      pool_(MaybeMakePool(config.pipeline.num_threads)),
      token_index_(config.token) {}

IncrementalPipeline::~IncrementalPipeline() = default;

void IncrementalPipeline::RebuildComponent(ComponentState* comp) {
  // Nodes are sorted, pairs are sorted: inserting edges in pair order
  // reproduces the edge-id order of a from-scratch run, and the monotone
  // node remap preserves every comparison the cleanup tie-breaks on.
  Graph local(comp->nodes.size());
  auto local_id = [comp](NodeId u) {
    return static_cast<NodeId>(
        std::lower_bound(comp->nodes.begin(), comp->nodes.end(), u) -
        comp->nodes.begin());
  };
  std::vector<uint32_t> edge_provenance;
  edge_provenance.reserve(comp->pairs.size());
  for (const RecordPair& pair : comp->pairs) {
    (void)local.AddEdge(local_id(pair.a), local_id(pair.b));
    edge_provenance.push_back(candidate_prov_.at(pair));
  }

  comp->stats = CleanupStats();
  PreCleanup(&local, edge_provenance, config_.pipeline.pre_cleanup_threshold,
             &comp->stats);
  GraLMatchCleanup cleanup(config_.pipeline.cleanup);
  std::vector<std::vector<NodeId>> local_groups =
      cleanup.Run(&local, &comp->stats, pool_.get());
  comp->stats.seconds = 0.0;  // counters only; Ingest accounts wall-clock

  comp->groups.clear();
  comp->groups.reserve(local_groups.size());
  for (auto& group : local_groups) {
    for (NodeId& u : group) u = comp->nodes[static_cast<size_t>(u)];
    comp->groups.push_back(std::move(group));
  }
}

IngestReport IncrementalPipeline::Ingest(const std::vector<Record>& batch,
                                         const PairwiseMatcher& matcher) {
  IngestReport report;
  report.records_added = batch.size();
  for (const Record& rec : batch) records_.Add(rec);
  comp_of_node_.resize(records_.size(), -1);

  // A fingerprint change means every cached score is stale: clear the cache
  // and re-derive the positive set and every component from fresh scores.
  const std::string fingerprint = matcher.Fingerprint();
  const bool rescore_all = !fingerprint_.empty() && fingerprint != fingerprint_;
  if (rescore_all) score_cache_.clear();
  fingerprint_ = fingerprint;

  // Blocking: fold each index's delta into the candidate set, snapshotting
  // each touched pair's pre-ingest provenance once.
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_prov;
  auto apply_delta = [&](const CandidateDelta& delta, uint32_t bit) {
    for (const RecordPair& pair : delta.added) {
      uint32_t& prov = candidate_prov_[pair];
      old_prov.emplace(pair, prov);
      prov |= bit;
    }
    for (const RecordPair& pair : delta.removed) {
      auto it = candidate_prov_.find(pair);
      old_prov.emplace(pair, it->second);
      it->second &= ~bit;
    }
  };
  if (config_.use_id_blocker) {
    apply_delta(id_index_.AddRecords(records_, pool_.get()), kBlockerIdOverlap);
  }
  if (config_.use_token_blocker) {
    apply_delta(token_index_.AddRecords(records_, pool_.get()),
                kBlockerTokenOverlap);
  }

  std::vector<RecordPair> cand_added, cand_removed, prov_changed;
  for (const auto& [pair, before] : old_prov) {
    const uint32_t now = candidate_prov_.at(pair);
    if (before == 0 && now != 0) {
      cand_added.push_back(pair);
    } else if (before != 0 && now == 0) {
      cand_removed.push_back(pair);
      candidate_prov_.erase(pair);
    } else if (before != now) {
      prov_changed.push_back(pair);
    }
  }
  std::sort(cand_added.begin(), cand_added.end());
  std::sort(cand_removed.begin(), cand_removed.end());
  std::sort(prov_changed.begin(), prov_changed.end());
  report.candidates_added = cand_added.size();
  report.candidates_removed = cand_removed.size();

  // Scoring: only pairs without a cached score under the current
  // fingerprint reach the matcher. Re-admitted pairs are cache hits.
  std::vector<RecordPair> to_score;
  if (rescore_all) {
    to_score.reserve(candidate_prov_.size());
    for (const auto& [pair, prov] : candidate_prov_) to_score.push_back(pair);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.count(pair)) {
        ++report.cache_hits;
      } else {
        to_score.push_back(pair);
      }
    }
  }
  std::sort(to_score.begin(), to_score.end());
  Stopwatch scoring_watch;
  std::vector<double> scores = ParallelMap<double>(
      pool_.get(), to_score.size(),
      [&](size_t k) {
        const RecordPair& pair = to_score[k];
        return matcher.MatchProbability(records_.at(pair.a),
                                        records_.at(pair.b));
      },
      /*grain=*/8);
  report.scoring_seconds = scoring_watch.ElapsedSeconds();
  scoring_seconds_total_ += report.scoring_seconds;
  for (size_t k = 0; k < to_score.size(); ++k) {
    score_cache_[to_score[k]] = scores[k];
  }
  report.pairs_scored = to_score.size();
  total_matcher_calls_ += to_score.size();
  total_cache_hits_ += report.cache_hits;

  // Positive-edge transitions.
  const double threshold = config_.pipeline.match_threshold;
  std::vector<RecordPair> pos_added, pos_removed, pos_prov_changed;
  if (rescore_all) {
    std::unordered_set<RecordPair, RecordPairHash> now_positive;
    for (const auto& [pair, prov] : candidate_prov_) {
      if (score_cache_.at(pair) >= threshold) now_positive.insert(pair);
    }
    for (const RecordPair& pair : now_positive) {
      if (!positives_.count(pair)) pos_added.push_back(pair);
    }
    for (const RecordPair& pair : positives_) {
      if (!now_positive.count(pair)) pos_removed.push_back(pair);
    }
    positives_ = std::move(now_positive);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.at(pair) >= threshold) {
        positives_.insert(pair);
        pos_added.push_back(pair);
      }
    }
    for (const RecordPair& pair : cand_removed) {
      if (positives_.erase(pair) > 0) pos_removed.push_back(pair);
    }
    for (const RecordPair& pair : prov_changed) {
      if (positives_.count(pair)) pos_prov_changed.push_back(pair);
    }
  }

  // Dirty components: every component touching an affected node, i.e. an
  // endpoint of an edge that appeared, disappeared, or changed provenance
  // (provenance feeds the Pre Cleanup). With a fingerprint change every
  // component is conservatively dirty.
  Stopwatch cleanup_watch;
  std::unordered_set<int32_t> dirty_comps;
  std::vector<NodeId> loose_nodes;  // affected nodes outside any component
  auto touch_node = [&](NodeId u) {
    const int32_t cid = comp_of_node_[static_cast<size_t>(u)];
    if (cid >= 0) {
      dirty_comps.insert(cid);
    } else {
      loose_nodes.push_back(u);
    }
  };
  for (const RecordPair& pair : pos_added) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_removed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_prov_changed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  if (rescore_all) {
    for (const auto& [cid, comp] : comps_) dirty_comps.insert(cid);
  }
  report.components_reused = comps_.size() - dirty_comps.size();

  if (!dirty_comps.empty() || !loose_nodes.empty()) {
    // Union the dirty region's nodes and surviving pairs, recompute its
    // connectivity, and re-clean each resulting component. Every removed
    // pair's endpoints are affected, so removals never touch a clean
    // component; every added pair's endpoints are in the region by
    // construction.
    std::vector<NodeId> region_nodes = loose_nodes;
    std::vector<RecordPair> region_pairs = pos_added;
    const std::unordered_set<RecordPair, RecordPairHash> removed_set(
        pos_removed.begin(), pos_removed.end());
    for (const int32_t cid : dirty_comps) {
      const ComponentState& comp = comps_.at(cid);
      region_nodes.insert(region_nodes.end(), comp.nodes.begin(),
                          comp.nodes.end());
      for (const RecordPair& pair : comp.pairs) {
        if (!removed_set.count(pair)) region_pairs.push_back(pair);
      }
    }
    std::sort(region_nodes.begin(), region_nodes.end());
    region_nodes.erase(std::unique(region_nodes.begin(), region_nodes.end()),
                       region_nodes.end());
    auto region_index = [&region_nodes](NodeId u) {
      return static_cast<size_t>(
          std::lower_bound(region_nodes.begin(), region_nodes.end(), u) -
          region_nodes.begin());
    };
    UnionFind uf(region_nodes.size());
    for (const RecordPair& pair : region_pairs) {
      uf.Union(region_index(pair.a), region_index(pair.b));
    }

    for (const int32_t cid : dirty_comps) comps_.erase(cid);
    std::unordered_map<size_t, int32_t> comp_of_root;
    std::vector<int32_t> rebuilt_ids;
    for (size_t k = 0; k < region_nodes.size(); ++k) {
      const NodeId u = region_nodes[k];
      if (uf.SetSize(k) < 2) {
        comp_of_node_[static_cast<size_t>(u)] = -1;
        continue;
      }
      const size_t root = uf.Find(k);
      auto [it, inserted] = comp_of_root.emplace(root, next_comp_id_);
      if (inserted) {
        ++next_comp_id_;
        rebuilt_ids.push_back(it->second);
      }
      comp_of_node_[static_cast<size_t>(u)] = it->second;
      comps_[it->second].nodes.push_back(u);  // ascending: k is ascending
    }
    for (const RecordPair& pair : region_pairs) {
      comps_[comp_of_node_[static_cast<size_t>(pair.a)]].pairs.push_back(pair);
    }
    for (const int32_t cid : rebuilt_ids) {
      ComponentState& comp = comps_[cid];
      std::sort(comp.pairs.begin(), comp.pairs.end());
      RebuildComponent(&comp);
    }
    report.components_rebuilt = rebuilt_ids.size();
  }
  report.cleanup_seconds = cleanup_watch.ElapsedSeconds();
  cleanup_seconds_total_ += report.cleanup_seconds;
  return report;
}

PipelineResult IncrementalPipeline::Snapshot() const {
  PipelineResult result;
  result.predicted_pairs.assign(positives_.begin(), positives_.end());
  std::sort(result.predicted_pairs.begin(), result.predicted_pairs.end());

  // Components (and groups) in the batch pipeline's canonical order:
  // components by smallest contained node — exactly the order a node scan
  // produces — and groups sorted by their smallest node afterwards.
  const size_t n = records_.size();
  for (size_t u = 0; u < n; ++u) {
    const int32_t cid = comp_of_node_[u];
    if (cid < 0) {
      result.pre_cleanup_components.push_back({static_cast<NodeId>(u)});
      result.groups.push_back({static_cast<NodeId>(u)});
      continue;
    }
    const ComponentState& comp = comps_.at(cid);
    if (comp.nodes.front() != static_cast<NodeId>(u)) continue;
    result.pre_cleanup_components.push_back(comp.nodes);
    for (const auto& group : comp.groups) result.groups.push_back(group);
  }
  std::sort(result.groups.begin(), result.groups.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });

  for (const auto& [cid, comp] : comps_) {
    result.cleanup_stats.pre_cleanup_edges_removed +=
        comp.stats.pre_cleanup_edges_removed;
    result.cleanup_stats.min_cut_calls += comp.stats.min_cut_calls;
    result.cleanup_stats.min_cut_edges_removed +=
        comp.stats.min_cut_edges_removed;
    result.cleanup_stats.betweenness_calls += comp.stats.betweenness_calls;
    result.cleanup_stats.betweenness_edges_removed +=
        comp.stats.betweenness_edges_removed;
  }
  result.cleanup_stats.seconds = cleanup_seconds_total_;
  result.inference_seconds = scoring_seconds_total_;
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------------

namespace {

/// Sorted snapshot of an unordered pair-keyed map (deterministic bytes).
template <typename V>
std::vector<std::pair<RecordPair, V>> SortedEntries(
    const std::unordered_map<RecordPair, V, RecordPairHash>& map) {
  std::vector<std::pair<RecordPair, V>> entries(map.begin(), map.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

void WritePairs(const std::vector<RecordPair>& pairs, BinaryWriter* writer) {
  writer->WriteU64(pairs.size());
  for (const RecordPair& pair : pairs) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
  }
}

/// Read a node-id vector whose entries must lie in [0, num_records).
Status ReadNodeIds(BinaryReader* reader, size_t num_records,
                   std::vector<NodeId>* nodes) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
  nodes->clear();
  nodes->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    NodeId node = -1;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&node));
    if (node < 0 || static_cast<size_t>(node) >= num_records) {
      return Status::IOError("corrupted checkpoint: node id " +
                             std::to_string(node) + " out of range");
    }
    nodes->push_back(node);
  }
  return Status::OK();
}

Status ReadPairs(BinaryReader* reader, size_t num_records,
                 std::vector<RecordPair>* pairs) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &count));
  pairs->clear();
  pairs->reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    if (pair.a < 0 || pair.b < 0 ||
        static_cast<size_t>(pair.a) >= num_records ||
        static_cast<size_t>(pair.b) >= num_records) {
      return Status::IOError("corrupted checkpoint: record pair out of range");
    }
    pairs->push_back(pair);
  }
  return Status::OK();
}

}  // namespace

void IncrementalPipeline::Serialize(BinaryWriter* writer) const {
  // Configuration.
  writer->WriteU64(config_.pipeline.cleanup.gamma);
  writer->WriteU64(config_.pipeline.cleanup.mu);
  writer->WriteDouble(config_.pipeline.match_threshold);
  writer->WriteU64(config_.pipeline.pre_cleanup_threshold);
  writer->WriteU64(config_.pipeline.num_threads);
  writer->WriteU64(config_.token.top_n);
  writer->WriteU64(config_.token.min_overlap);
  writer->WriteDouble(config_.token.max_token_df);
  writer->WriteU8(config_.use_token_blocker ? 1 : 0);
  writer->WriteU8(config_.use_id_blocker ? 1 : 0);

  // Records, in ingest order.
  writer->WriteU64(records_.size());
  for (const Record& rec : records_.records()) {
    writer->WriteI32(rec.source());
    writer->WriteU8(static_cast<uint8_t>(rec.kind()));
    writer->WriteU64(rec.attributes().size());
    for (const auto& [name, value] : rec.attributes()) {
      writer->WriteString(name);
      writer->WriteString(value);
    }
  }

  // Blocking indexes.
  id_index_.SaveState(writer);
  token_index_.SaveState(writer);

  // Scores and candidate state.
  writer->WriteString(fingerprint_);
  auto prov_entries = SortedEntries(candidate_prov_);
  writer->WriteU64(prov_entries.size());
  for (const auto& [pair, prov] : prov_entries) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteU32(prov);
  }
  auto score_entries = SortedEntries(score_cache_);
  writer->WriteU64(score_entries.size());
  for (const auto& [pair, score] : score_entries) {
    writer->WriteI32(pair.a);
    writer->WriteI32(pair.b);
    writer->WriteDouble(score);
  }
  std::vector<RecordPair> positives(positives_.begin(), positives_.end());
  std::sort(positives.begin(), positives.end());
  WritePairs(positives, writer);

  // Component structure with cached cleanup outcomes.
  writer->WriteU64(comp_of_node_.size());
  for (int32_t cid : comp_of_node_) writer->WriteI32(cid);
  std::vector<int32_t> comp_ids;
  comp_ids.reserve(comps_.size());
  for (const auto& [cid, comp] : comps_) comp_ids.push_back(cid);
  std::sort(comp_ids.begin(), comp_ids.end());
  writer->WriteU64(comp_ids.size());
  for (int32_t cid : comp_ids) {
    const ComponentState& comp = comps_.at(cid);
    writer->WriteI32(cid);
    writer->WriteU64(comp.nodes.size());
    for (NodeId u : comp.nodes) writer->WriteI32(u);
    WritePairs(comp.pairs, writer);
    writer->WriteU64(comp.groups.size());
    for (const auto& group : comp.groups) {
      writer->WriteU64(group.size());
      for (NodeId u : group) writer->WriteI32(u);
    }
    writer->WriteU64(comp.stats.pre_cleanup_edges_removed);
    writer->WriteU64(comp.stats.min_cut_calls);
    writer->WriteU64(comp.stats.min_cut_edges_removed);
    writer->WriteU64(comp.stats.betweenness_calls);
    writer->WriteU64(comp.stats.betweenness_edges_removed);
  }
  writer->WriteI32(next_comp_id_);

  // Cumulative counters.
  writer->WriteU64(total_matcher_calls_);
  writer->WriteU64(total_cache_hits_);
  writer->WriteDouble(scoring_seconds_total_);
  writer->WriteDouble(cleanup_seconds_total_);
}

Result<std::unique_ptr<IncrementalPipeline>> IncrementalPipeline::Deserialize(
    BinaryReader* reader, size_t num_threads_override) {
  IncrementalPipelineConfig config;
  uint64_t u = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.cleanup.gamma = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.cleanup.mu = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&config.pipeline.match_threshold));
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.pre_cleanup_threshold = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.pipeline.num_threads = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.token.top_n = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  config.token.min_overlap = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&config.token.max_token_df));
  uint8_t flag = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&flag));
  config.use_token_blocker = flag != 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&flag));
  config.use_id_blocker = flag != 0;
  if (num_threads_override > 0) {
    config.pipeline.num_threads = num_threads_override;
  }

  auto pipeline = std::make_unique<IncrementalPipeline>(config);

  uint64_t num_records = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(13, &num_records));
  for (uint64_t r = 0; r < num_records; ++r) {
    int32_t source = 0;
    uint8_t kind = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&source));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU8(&kind));
    if (kind > static_cast<uint8_t>(RecordKind::kProduct)) {
      return Status::IOError("corrupted checkpoint: unknown record kind " +
                             std::to_string(kind));
    }
    Record rec(static_cast<SourceId>(source), static_cast<RecordKind>(kind));
    uint64_t num_attrs = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &num_attrs));
    for (uint64_t a = 0; a < num_attrs; ++a) {
      std::string name, value;
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&name));
      GRALMATCH_RETURN_NOT_OK(reader->ReadString(&value));
      rec.Set(name, value);
    }
    pipeline->records_.Add(std::move(rec));
  }
  const size_t n = pipeline->records_.size();

  GRALMATCH_RETURN_NOT_OK(pipeline->id_index_.LoadState(reader));
  GRALMATCH_RETURN_NOT_OK(pipeline->token_index_.LoadState(reader));
  if (pipeline->id_index_.num_records() != n ||
      pipeline->token_index_.num_records() != n) {
    return Status::IOError(
        "corrupted checkpoint: blocking index record counts disagree with "
        "the record table");
  }

  GRALMATCH_RETURN_NOT_OK(reader->ReadString(&pipeline->fingerprint_));
  // Pair ids feed unchecked records_.at() lookups in Ingest, so they are
  // range-validated here like every other record reference.
  auto check_pair = [n](const RecordPair& pair) {
    if (pair.a < 0 || pair.b < 0 || static_cast<size_t>(pair.a) >= n ||
        static_cast<size_t>(pair.b) >= n) {
      return Status::IOError("corrupted checkpoint: record pair out of range");
    }
    return Status::OK();
  };
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(12, &count));
  pipeline->candidate_prov_.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    uint32_t prov = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadU32(&prov));
    GRALMATCH_RETURN_NOT_OK(check_pair(pair));
    pipeline->candidate_prov_[pair] = prov;
  }
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(16, &count));
  pipeline->score_cache_.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    RecordPair pair;
    double score = 0.0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.a));
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pair.b));
    GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&score));
    GRALMATCH_RETURN_NOT_OK(check_pair(pair));
    pipeline->score_cache_[pair] = score;
  }
  std::vector<RecordPair> positives;
  GRALMATCH_RETURN_NOT_OK(ReadPairs(reader, n, &positives));
  pipeline->positives_.insert(positives.begin(), positives.end());

  // Every current candidate has a cached score and every positive pair is a
  // current candidate — Ingest() dereferences both unconditionally, so a
  // checkpoint violating either invariant must be rejected here, not crash
  // there.
  const uint32_t known_bits =
      (config.use_id_blocker ? kBlockerIdOverlap : 0u) |
      (config.use_token_blocker ? kBlockerTokenOverlap : 0u);
  for (const auto& [pair, prov] : pipeline->candidate_prov_) {
    if (prov == 0 || (prov & ~known_bits) != 0) {
      return Status::IOError(
          "corrupted checkpoint: candidate provenance bits disagree with the "
          "configured blockers");
    }
    if (!pipeline->score_cache_.count(pair)) {
      return Status::IOError(
          "corrupted checkpoint: candidate pair without a cached score");
    }
  }
  for (const RecordPair& pair : pipeline->positives_) {
    if (!pipeline->candidate_prov_.count(pair)) {
      return Status::IOError(
          "corrupted checkpoint: positive pair missing from the candidate "
          "set");
    }
  }
  // The candidate set must be exactly what the restored blocking indexes
  // currently produce, bit by bit: a future AddRecords retraction looks the
  // pair up in candidate_prov_ unchecked, so an index/pipeline mismatch
  // would dereference end().
  auto check_index = [&pipeline](const std::vector<RecordPair>& index_pairs,
                                 uint32_t bit) {
    size_t with_bit = 0;
    for (const auto& [pair, prov] : pipeline->candidate_prov_) {
      (void)pair;
      if (prov & bit) ++with_bit;
    }
    if (with_bit != index_pairs.size()) {
      return Status::IOError(
          "corrupted checkpoint: blocking index pair set disagrees with the "
          "candidate provenance");
    }
    for (const RecordPair& pair : index_pairs) {
      auto it = pipeline->candidate_prov_.find(pair);
      if (it == pipeline->candidate_prov_.end() || (it->second & bit) == 0) {
        return Status::IOError(
            "corrupted checkpoint: blocking index pair missing from the "
            "candidate set");
      }
    }
    return Status::OK();
  };
  if (config.use_id_blocker) {
    GRALMATCH_RETURN_NOT_OK(
        check_index(pipeline->id_index_.CurrentPairs(), kBlockerIdOverlap));
  }
  if (config.use_token_blocker) {
    GRALMATCH_RETURN_NOT_OK(check_index(pipeline->token_index_.CurrentPairs(),
                                        kBlockerTokenOverlap));
  }
  // An empty fingerprint means no Ingest ever ran (Ingest sets it
  // unconditionally), so every other piece of state must be empty too —
  // otherwise cached scores could never be invalidated by a fingerprint
  // change.
  if (pipeline->fingerprint_.empty() &&
      (n != 0 || !pipeline->candidate_prov_.empty() ||
       !pipeline->score_cache_.empty() || !pipeline->positives_.empty())) {
    return Status::IOError(
        "corrupted checkpoint: pre-ingest fingerprint with non-empty state");
  }

  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &count));
  if (count != n) {
    return Status::IOError(
        "corrupted checkpoint: component map size disagrees with the record "
        "table");
  }
  pipeline->comp_of_node_.resize(static_cast<size_t>(count));
  for (auto& cid : pipeline->comp_of_node_) {
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&cid));
  }

  uint64_t num_comps = 0;
  GRALMATCH_RETURN_NOT_OK(reader->ReadCount(4, &num_comps));
  for (uint64_t k = 0; k < num_comps; ++k) {
    int32_t cid = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&cid));
    ComponentState comp;
    GRALMATCH_RETURN_NOT_OK(ReadNodeIds(reader, n, &comp.nodes));
    GRALMATCH_RETURN_NOT_OK(ReadPairs(reader, n, &comp.pairs));
    uint64_t num_groups = 0;
    GRALMATCH_RETURN_NOT_OK(reader->ReadCount(8, &num_groups));
    comp.groups.reserve(static_cast<size_t>(num_groups));
    for (uint64_t g = 0; g < num_groups; ++g) {
      std::vector<NodeId> group;
      GRALMATCH_RETURN_NOT_OK(ReadNodeIds(reader, n, &group));
      comp.groups.push_back(std::move(group));
    }
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
    comp.stats.pre_cleanup_edges_removed = static_cast<size_t>(u);
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
    comp.stats.min_cut_calls = static_cast<size_t>(u);
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
    comp.stats.min_cut_edges_removed = static_cast<size_t>(u);
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
    comp.stats.betweenness_calls = static_cast<size_t>(u);
    GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
    comp.stats.betweenness_edges_removed = static_cast<size_t>(u);
    if (comp.nodes.empty()) {
      return Status::IOError("corrupted checkpoint: empty component");
    }
    if (!pipeline->comps_.emplace(cid, std::move(comp)).second) {
      return Status::IOError("corrupted checkpoint: duplicate component id");
    }
  }
  for (size_t r = 0; r < pipeline->comp_of_node_.size(); ++r) {
    const int32_t cid = pipeline->comp_of_node_[r];
    if (cid >= 0 && !pipeline->comps_.count(cid)) {
      return Status::IOError(
          "corrupted checkpoint: record mapped to a missing component");
    }
  }
  // Snapshot() keys each component's emission off its smallest node and
  // RebuildComponent binary-searches the node list, so the list must be
  // sorted and unique, agree with the membership map, and contain every
  // edge endpoint — an edge into another component would index past the
  // local UnionFind on the next dirty rebuild.
  for (const auto& [cid, comp] : pipeline->comps_) {
    if (!std::is_sorted(comp.nodes.begin(), comp.nodes.end()) ||
        std::adjacent_find(comp.nodes.begin(), comp.nodes.end()) !=
            comp.nodes.end()) {
      return Status::IOError(
          "corrupted checkpoint: component node list is not sorted unique");
    }
    for (const NodeId node : comp.nodes) {
      if (pipeline->comp_of_node_[static_cast<size_t>(node)] != cid) {
        return Status::IOError(
            "corrupted checkpoint: component node list disagrees with the "
            "membership map");
      }
    }
    for (const RecordPair& pair : comp.pairs) {
      if (!pipeline->positives_.count(pair)) {
        return Status::IOError(
            "corrupted checkpoint: component edge is not a positive pair");
      }
      if (!std::binary_search(comp.nodes.begin(), comp.nodes.end(), pair.a) ||
          !std::binary_search(comp.nodes.begin(), comp.nodes.end(), pair.b)) {
        return Status::IOError(
            "corrupted checkpoint: component edge endpoint outside the "
            "component");
      }
    }
  }
  GRALMATCH_RETURN_NOT_OK(reader->ReadI32(&pipeline->next_comp_id_));
  // The next id must be fresh: colliding with a live component would make a
  // later rebuild silently merge two components' state.
  for (const auto& [cid, comp] : pipeline->comps_) {
    (void)comp;
    if (cid < 0 || cid >= pipeline->next_comp_id_) {
      return Status::IOError(
          "corrupted checkpoint: component id outside [0, next_comp_id)");
    }
  }

  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  pipeline->total_matcher_calls_ = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadU64(&u));
  pipeline->total_cache_hits_ = static_cast<size_t>(u);
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&pipeline->scoring_seconds_total_));
  GRALMATCH_RETURN_NOT_OK(reader->ReadDouble(&pipeline->cleanup_seconds_total_));
  return pipeline;
}

}  // namespace gralmatch

#include "stream/incremental_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "common/union_find.h"
#include "core/cleanup.h"
#include "exec/parallel.h"
#include "graph/graph.h"

namespace gralmatch {

IncrementalPipeline::IncrementalPipeline(IncrementalPipelineConfig config)
    : config_(config),
      pool_(MaybeMakePool(config.pipeline.num_threads)),
      token_index_(config.token) {}

IncrementalPipeline::~IncrementalPipeline() = default;

void IncrementalPipeline::RebuildComponent(ComponentState* comp) {
  // Nodes are sorted, pairs are sorted: inserting edges in pair order
  // reproduces the edge-id order of a from-scratch run, and the monotone
  // node remap preserves every comparison the cleanup tie-breaks on.
  Graph local(comp->nodes.size());
  auto local_id = [comp](NodeId u) {
    return static_cast<NodeId>(
        std::lower_bound(comp->nodes.begin(), comp->nodes.end(), u) -
        comp->nodes.begin());
  };
  std::vector<uint32_t> edge_provenance;
  edge_provenance.reserve(comp->pairs.size());
  for (const RecordPair& pair : comp->pairs) {
    (void)local.AddEdge(local_id(pair.a), local_id(pair.b));
    edge_provenance.push_back(candidate_prov_.at(pair));
  }

  comp->stats = CleanupStats();
  PreCleanup(&local, edge_provenance, config_.pipeline.pre_cleanup_threshold,
             &comp->stats);
  GraLMatchCleanup cleanup(config_.pipeline.cleanup);
  std::vector<std::vector<NodeId>> local_groups =
      cleanup.Run(&local, &comp->stats, pool_.get());
  comp->stats.seconds = 0.0;  // counters only; Ingest accounts wall-clock

  comp->groups.clear();
  comp->groups.reserve(local_groups.size());
  for (auto& group : local_groups) {
    for (NodeId& u : group) u = comp->nodes[static_cast<size_t>(u)];
    comp->groups.push_back(std::move(group));
  }
}

IngestReport IncrementalPipeline::Ingest(const std::vector<Record>& batch,
                                         const PairwiseMatcher& matcher) {
  IngestReport report;
  report.records_added = batch.size();
  for (const Record& rec : batch) records_.Add(rec);
  comp_of_node_.resize(records_.size(), -1);

  // A fingerprint change means every cached score is stale: clear the cache
  // and re-derive the positive set and every component from fresh scores.
  const std::string fingerprint = matcher.Fingerprint();
  const bool rescore_all = !fingerprint_.empty() && fingerprint != fingerprint_;
  if (rescore_all) score_cache_.clear();
  fingerprint_ = fingerprint;

  // Blocking: fold each index's delta into the candidate set, snapshotting
  // each touched pair's pre-ingest provenance once.
  std::unordered_map<RecordPair, uint32_t, RecordPairHash> old_prov;
  auto apply_delta = [&](const CandidateDelta& delta, uint32_t bit) {
    for (const RecordPair& pair : delta.added) {
      uint32_t& prov = candidate_prov_[pair];
      old_prov.emplace(pair, prov);
      prov |= bit;
    }
    for (const RecordPair& pair : delta.removed) {
      auto it = candidate_prov_.find(pair);
      old_prov.emplace(pair, it->second);
      it->second &= ~bit;
    }
  };
  if (config_.use_id_blocker) {
    apply_delta(id_index_.AddRecords(records_, pool_.get()), kBlockerIdOverlap);
  }
  if (config_.use_token_blocker) {
    apply_delta(token_index_.AddRecords(records_, pool_.get()),
                kBlockerTokenOverlap);
  }

  std::vector<RecordPair> cand_added, cand_removed, prov_changed;
  for (const auto& [pair, before] : old_prov) {
    const uint32_t now = candidate_prov_.at(pair);
    if (before == 0 && now != 0) {
      cand_added.push_back(pair);
    } else if (before != 0 && now == 0) {
      cand_removed.push_back(pair);
      candidate_prov_.erase(pair);
    } else if (before != now) {
      prov_changed.push_back(pair);
    }
  }
  std::sort(cand_added.begin(), cand_added.end());
  std::sort(cand_removed.begin(), cand_removed.end());
  std::sort(prov_changed.begin(), prov_changed.end());
  report.candidates_added = cand_added.size();
  report.candidates_removed = cand_removed.size();

  // Scoring: only pairs without a cached score under the current
  // fingerprint reach the matcher. Re-admitted pairs are cache hits.
  std::vector<RecordPair> to_score;
  if (rescore_all) {
    to_score.reserve(candidate_prov_.size());
    for (const auto& [pair, prov] : candidate_prov_) to_score.push_back(pair);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.count(pair)) {
        ++report.cache_hits;
      } else {
        to_score.push_back(pair);
      }
    }
  }
  std::sort(to_score.begin(), to_score.end());
  Stopwatch scoring_watch;
  std::vector<double> scores = ParallelMap<double>(
      pool_.get(), to_score.size(),
      [&](size_t k) {
        const RecordPair& pair = to_score[k];
        return matcher.MatchProbability(records_.at(pair.a),
                                        records_.at(pair.b));
      },
      /*grain=*/8);
  report.scoring_seconds = scoring_watch.ElapsedSeconds();
  scoring_seconds_total_ += report.scoring_seconds;
  for (size_t k = 0; k < to_score.size(); ++k) {
    score_cache_[to_score[k]] = scores[k];
  }
  report.pairs_scored = to_score.size();
  total_matcher_calls_ += to_score.size();
  total_cache_hits_ += report.cache_hits;

  // Positive-edge transitions.
  const double threshold = config_.pipeline.match_threshold;
  std::vector<RecordPair> pos_added, pos_removed, pos_prov_changed;
  if (rescore_all) {
    std::unordered_set<RecordPair, RecordPairHash> now_positive;
    for (const auto& [pair, prov] : candidate_prov_) {
      if (score_cache_.at(pair) >= threshold) now_positive.insert(pair);
    }
    for (const RecordPair& pair : now_positive) {
      if (!positives_.count(pair)) pos_added.push_back(pair);
    }
    for (const RecordPair& pair : positives_) {
      if (!now_positive.count(pair)) pos_removed.push_back(pair);
    }
    positives_ = std::move(now_positive);
  } else {
    for (const RecordPair& pair : cand_added) {
      if (score_cache_.at(pair) >= threshold) {
        positives_.insert(pair);
        pos_added.push_back(pair);
      }
    }
    for (const RecordPair& pair : cand_removed) {
      if (positives_.erase(pair) > 0) pos_removed.push_back(pair);
    }
    for (const RecordPair& pair : prov_changed) {
      if (positives_.count(pair)) pos_prov_changed.push_back(pair);
    }
  }

  // Dirty components: every component touching an affected node, i.e. an
  // endpoint of an edge that appeared, disappeared, or changed provenance
  // (provenance feeds the Pre Cleanup). With a fingerprint change every
  // component is conservatively dirty.
  Stopwatch cleanup_watch;
  std::unordered_set<int32_t> dirty_comps;
  std::vector<NodeId> loose_nodes;  // affected nodes outside any component
  auto touch_node = [&](NodeId u) {
    const int32_t cid = comp_of_node_[static_cast<size_t>(u)];
    if (cid >= 0) {
      dirty_comps.insert(cid);
    } else {
      loose_nodes.push_back(u);
    }
  };
  for (const RecordPair& pair : pos_added) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_removed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  for (const RecordPair& pair : pos_prov_changed) {
    touch_node(pair.a);
    touch_node(pair.b);
  }
  if (rescore_all) {
    for (const auto& [cid, comp] : comps_) dirty_comps.insert(cid);
  }
  report.components_reused = comps_.size() - dirty_comps.size();

  if (!dirty_comps.empty() || !loose_nodes.empty()) {
    // Union the dirty region's nodes and surviving pairs, recompute its
    // connectivity, and re-clean each resulting component. Every removed
    // pair's endpoints are affected, so removals never touch a clean
    // component; every added pair's endpoints are in the region by
    // construction.
    std::vector<NodeId> region_nodes = loose_nodes;
    std::vector<RecordPair> region_pairs = pos_added;
    const std::unordered_set<RecordPair, RecordPairHash> removed_set(
        pos_removed.begin(), pos_removed.end());
    for (const int32_t cid : dirty_comps) {
      const ComponentState& comp = comps_.at(cid);
      region_nodes.insert(region_nodes.end(), comp.nodes.begin(),
                          comp.nodes.end());
      for (const RecordPair& pair : comp.pairs) {
        if (!removed_set.count(pair)) region_pairs.push_back(pair);
      }
    }
    std::sort(region_nodes.begin(), region_nodes.end());
    region_nodes.erase(std::unique(region_nodes.begin(), region_nodes.end()),
                       region_nodes.end());
    auto region_index = [&region_nodes](NodeId u) {
      return static_cast<size_t>(
          std::lower_bound(region_nodes.begin(), region_nodes.end(), u) -
          region_nodes.begin());
    };
    UnionFind uf(region_nodes.size());
    for (const RecordPair& pair : region_pairs) {
      uf.Union(region_index(pair.a), region_index(pair.b));
    }

    for (const int32_t cid : dirty_comps) comps_.erase(cid);
    std::unordered_map<size_t, int32_t> comp_of_root;
    std::vector<int32_t> rebuilt_ids;
    for (size_t k = 0; k < region_nodes.size(); ++k) {
      const NodeId u = region_nodes[k];
      if (uf.SetSize(k) < 2) {
        comp_of_node_[static_cast<size_t>(u)] = -1;
        continue;
      }
      const size_t root = uf.Find(k);
      auto [it, inserted] = comp_of_root.emplace(root, next_comp_id_);
      if (inserted) {
        ++next_comp_id_;
        rebuilt_ids.push_back(it->second);
      }
      comp_of_node_[static_cast<size_t>(u)] = it->second;
      comps_[it->second].nodes.push_back(u);  // ascending: k is ascending
    }
    for (const RecordPair& pair : region_pairs) {
      comps_[comp_of_node_[static_cast<size_t>(pair.a)]].pairs.push_back(pair);
    }
    for (const int32_t cid : rebuilt_ids) {
      ComponentState& comp = comps_[cid];
      std::sort(comp.pairs.begin(), comp.pairs.end());
      RebuildComponent(&comp);
    }
    report.components_rebuilt = rebuilt_ids.size();
  }
  report.cleanup_seconds = cleanup_watch.ElapsedSeconds();
  cleanup_seconds_total_ += report.cleanup_seconds;
  return report;
}

PipelineResult IncrementalPipeline::Snapshot() const {
  PipelineResult result;
  result.predicted_pairs.assign(positives_.begin(), positives_.end());
  std::sort(result.predicted_pairs.begin(), result.predicted_pairs.end());

  // Components (and groups) in the batch pipeline's canonical order:
  // components by smallest contained node — exactly the order a node scan
  // produces — and groups sorted by their smallest node afterwards.
  const size_t n = records_.size();
  for (size_t u = 0; u < n; ++u) {
    const int32_t cid = comp_of_node_[u];
    if (cid < 0) {
      result.pre_cleanup_components.push_back({static_cast<NodeId>(u)});
      result.groups.push_back({static_cast<NodeId>(u)});
      continue;
    }
    const ComponentState& comp = comps_.at(cid);
    if (comp.nodes.front() != static_cast<NodeId>(u)) continue;
    result.pre_cleanup_components.push_back(comp.nodes);
    for (const auto& group : comp.groups) result.groups.push_back(group);
  }
  std::sort(result.groups.begin(), result.groups.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });

  for (const auto& [cid, comp] : comps_) {
    result.cleanup_stats.pre_cleanup_edges_removed +=
        comp.stats.pre_cleanup_edges_removed;
    result.cleanup_stats.min_cut_calls += comp.stats.min_cut_calls;
    result.cleanup_stats.min_cut_edges_removed +=
        comp.stats.min_cut_edges_removed;
    result.cleanup_stats.betweenness_calls += comp.stats.betweenness_calls;
    result.cleanup_stats.betweenness_edges_removed +=
        comp.stats.betweenness_edges_removed;
  }
  result.cleanup_stats.seconds = cleanup_seconds_total_;
  result.inference_seconds = scoring_seconds_total_;
  return result;
}

}  // namespace gralmatch

#ifndef GRALMATCH_STREAM_GROUP_STORE_H_
#define GRALMATCH_STREAM_GROUP_STORE_H_

/// \file group_store.h
/// Incrementally maintained component/group state shared by the streaming
/// and sharded pipelines: the connected components of the pristine
/// (pre-cleanup) positive-edge graph, each with its cached cleanup outcome.
///
/// Apply() is the dirty-component cleanup step. Given the positive-edge
/// transitions of one ingest (edges added / removed / provenance-changed),
/// it re-runs Pre Graph Cleanup + the GraLMatch cleanup only on the
/// components those transitions touch, splicing every untouched component
/// through unchanged with its cached counters. The rebuild reproduces a
/// from-scratch run bit for bit: component subgraphs are rebuilt with nodes
/// compact-remapped in sorted order and edges inserted in sorted pair order
/// — exactly the edge-id order a from-scratch run on the union would assign
/// — so every cleanup tie-break matches the batch pipeline.
///
/// The store is agnostic to where the positive edges come from: the
/// single-pipeline caller feeds it one candidate set's transitions, the
/// sharded pipeline feeds it the union-find merge of every shard's
/// transitions (cross-shard edges union components that live on different
/// shards, which is why the store is global, never per-shard).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "data/ground_truth.h"
#include "graph/graph.h"

namespace gralmatch {

class BinaryReader;
class BinaryWriter;
class ThreadPool;

/// Serialize a sorted pair vector (u64 count + i32 pairs).
void WriteRecordPairs(const std::vector<RecordPair>& pairs,
                      BinaryWriter* writer);

/// Read a pair vector whose record ids must lie in [0, num_records).
Status ReadRecordPairs(BinaryReader* reader, size_t num_records,
                       std::vector<RecordPair>* pairs);

/// Read a node-id vector whose entries must lie in [0, num_records).
Status ReadNodeIdVector(BinaryReader* reader, size_t num_records,
                        std::vector<NodeId>* nodes);

/// \brief Component/group state with dirty-component cleanup.
class GroupStore {
 public:
  /// One connected component of the pristine positive-edge graph, with its
  /// cached cleanup outcome.
  struct ComponentState {
    std::vector<NodeId> nodes;      ///< sorted ascending
    std::vector<RecordPair> pairs;  ///< positive pairs inside, sorted
    std::vector<std::vector<NodeId>> groups;  ///< cleaned groups, global ids
    CleanupStats stats;  ///< counters only (seconds stays 0)
  };

  struct ApplyReport {
    size_t components_rebuilt = 0;
    size_t components_reused = 0;
  };

  /// Provenance bits of a (current) positive pair; feeds the Pre Cleanup.
  using ProvenanceFn = std::function<uint32_t(const RecordPair&)>;
  /// Whether a pair is currently positive (checkpoint validation).
  using IsPositiveFn = std::function<bool(const RecordPair&)>;

  /// Grow the per-record membership map to `num_records` entries (new
  /// records start as singletons). Call before Apply when records arrived.
  void EnsureNumRecords(size_t num_records);

  /// Fold one ingest's positive-edge transitions into the component
  /// structure and re-clean exactly the dirty region (see file comment).
  /// With `rebuild_all` every component is conservatively dirty (matcher
  /// fingerprint changes re-derive every score). All three transition lists
  /// must be consistent with the store: removed/changed pairs were present,
  /// added pairs are new.
  ApplyReport Apply(const std::vector<RecordPair>& pos_added,
                    const std::vector<RecordPair>& pos_removed,
                    const std::vector<RecordPair>& pos_prov_changed,
                    bool rebuild_all, const ProvenanceFn& prov_of,
                    const PipelineConfig& config, ThreadPool* pool);

  /// Fill `result` with pre-cleanup components, groups and cleanup counters
  /// in the batch pipeline's canonical order: components by smallest
  /// contained node (singletons included), groups sorted by smallest node.
  /// `alive` (optional, size `num_records`) masks out tombstoned records:
  /// dead records emit no singleton component/group — by the retraction
  /// invariant they are in no component, so the snapshot is exactly the one
  /// a from-scratch run on the survivors produces (modulo the monotone id
  /// compaction). `result->cleanup_stats.seconds` is left untouched
  /// (wall-clock is the caller's bookkeeping).
  void FillSnapshot(size_t num_records, const std::vector<char>* alive,
                    PipelineResult* result) const;

  /// Serialize the complete store (membership map, components in sorted id
  /// order with cached groups/counters, next component id). Byte layout is
  /// the PR-4 checkpoint body layout.
  void Save(BinaryWriter* writer) const;

  /// Restore Save() output, re-validating every cross-field invariant
  /// (membership agreement, sorted-unique node lists, edges positive and
  /// internal, fresh next id). Replaces the current contents.
  Status Load(BinaryReader* reader, size_t num_records,
              const IsPositiveFn& is_positive);

  // -- Piecewise reconstruction (sharded manifest checkpoints) --------------

  /// Insert one component under an explicit id, growing the membership map.
  /// Rejects duplicate ids, empty/unsorted node lists and nodes already
  /// owned by another component. Finish with SetNextComponentId + Validate.
  Status InsertComponent(int32_t cid, ComponentState comp, size_t num_records);

  void SetNextComponentId(int32_t next) { next_comp_id_ = next; }

  /// Cross-field checks shared with Load: every component edge is a current
  /// positive pair with both endpoints inside its component, and every
  /// component id lies in [0, next_comp_id).
  Status Validate(const IsPositiveFn& is_positive) const;

  const std::unordered_map<int32_t, ComponentState>& components() const {
    return comps_;
  }
  const std::vector<int32_t>& comp_of_node() const { return comp_of_node_; }
  int32_t next_comp_id() const { return next_comp_id_; }

 private:
  /// Re-run Pre Graph Cleanup + Algorithm 1 on one pristine component.
  void RebuildComponent(ComponentState* comp, const ProvenanceFn& prov_of,
                        const PipelineConfig& config, ThreadPool* pool);

  /// Component id per record (-1: singleton, not in any positive pair).
  std::vector<int32_t> comp_of_node_;
  std::unordered_map<int32_t, ComponentState> comps_;
  int32_t next_comp_id_ = 0;
};

/// Serialize one component's canonical byte encoding — nodes, pairs,
/// cleaned groups, cleanup counters. The single definition shared by the
/// whole-store serialization (GroupStore::Save) and the per-shard
/// checkpoint slices (shard/shard_state.h), so the two formats can never
/// drift field-by-field.
void WriteComponentState(const GroupStore::ComponentState& comp,
                         BinaryWriter* writer);

/// Read WriteComponentState output; every id bounded by [0, num_records).
Status ReadComponentState(BinaryReader* reader, size_t num_records,
                          GroupStore::ComponentState* comp);

}  // namespace gralmatch

#endif  // GRALMATCH_STREAM_GROUP_STORE_H_

#include "common/cli.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace gralmatch {

Result<int64_t> ParseInt64(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  // strtoll silently skips leading whitespace; flag values should not.
  if (std::isspace(static_cast<unsigned char>(text.front()))) {
    return Status::InvalidArgument("\"" + text +
                                   "\" has leading whitespace");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    return Status::InvalidArgument("\"" + text + "\" is not an integer");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("\"" + text + "\" is outside the int64 range");
  }
  if (*end != '\0') {
    return Status::InvalidArgument("\"" + text +
                                   "\" has trailing characters after the "
                                   "integer");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  if (std::isspace(static_cast<unsigned char>(text.front()))) {
    return Status::InvalidArgument("\"" + text +
                                   "\" has leading whitespace");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return Status::InvalidArgument("\"" + text + "\" is not a number");
  }
  // ERANGE covers both overflow (±HUGE_VAL) and underflow (≈0); only
  // overflow loses the magnitude, so only overflow is rejected.
  if (errno == ERANGE && std::abs(value) == HUGE_VAL) {
    return Status::OutOfRange("\"" + text + "\" is outside the double range");
  }
  if (*end != '\0') {
    return Status::InvalidArgument(
        "\"" + text + "\" has trailing characters after the number");
  }
  return value;
}

namespace {

/// Flag values are user input on binaries without an error channel back to
/// the caller, so a malformed value is diagnosed and the process exits —
/// never a silently truncated number.
[[noreturn]] void DieOnBadFlag(const std::string& name, const Status& status) {
  std::fprintf(stderr, "error: invalid value for --%s: %s\n", name.c_str(),
               status.message().c_str());
  std::exit(2);
}

}  // namespace

CliFlags CliFlags::Parse(int argc, char** argv) {
  CliFlags out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        out.flags_[body] = argv[++i];
      } else {
        out.flags_[body] = "";
      }
    } else {
      out.positional_.push_back(arg);
    }
  }
  return out;
}

bool CliFlags::Has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliFlags::GetString(const std::string& name,
                                const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int64_t CliFlags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  Result<int64_t> parsed = ParseInt64(it->second);
  if (!parsed.ok()) DieOnBadFlag(name, parsed.status());
  return *parsed;
}

double CliFlags::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) DieOnBadFlag(name, parsed.status());
  return *parsed;
}

}  // namespace gralmatch

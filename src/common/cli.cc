#include "common/cli.h"

#include <cstdlib>

#include "common/strings.h"

namespace gralmatch {

CliFlags CliFlags::Parse(int argc, char** argv) {
  CliFlags out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        out.flags_[body] = argv[++i];
      } else {
        out.flags_[body] = "";
      }
    } else {
      out.positional_.push_back(arg);
    }
  }
  return out;
}

bool CliFlags::Has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliFlags::GetString(const std::string& name,
                                const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int64_t CliFlags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace gralmatch

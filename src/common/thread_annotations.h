#ifndef GRALMATCH_COMMON_THREAD_ANNOTATIONS_H_
#define GRALMATCH_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attribute macros, in the idiom of LLVM's
/// mutex.h example and abseil's thread_annotations.h. On Clang these expand
/// to the `capability`-based attributes that `-Wthread-safety` checks at
/// compile time; on every other compiler they expand to nothing, so the
/// annotations are free documentation there.
///
/// Conventions (enforced repo-wide, see docs/static-analysis.md):
///  - Every member guarded by a mutex carries GUARDED_BY(mu_). The analysis
///    then rejects any read or write without the mutex held.
///  - Functions that must be called with a lock held are marked
///    REQUIRES(mu_); functions that must NOT hold it are marked
///    EXCLUDES(mu_).
///  - Use the annotated gralmatch::Mutex / MutexLock / CondVar wrappers
///    (common/mutex.h) instead of raw std::mutex so acquisition and release
///    are visible to the analysis. std::lock_guard / std::unique_lock over a
///    std::mutex are invisible to it.
///  - NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort; every use
///    must carry a comment explaining why the analysis cannot see the
///    invariant.

#if defined(__clang__)
#define GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// A type that models a capability (a lock): Mutex in common/mutex.h.
#define CAPABILITY(x) GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction: MutexLock in common/mutex.h.
#define SCOPED_CAPABILITY GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GUARDED_BY(x) GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declared lock-acquisition order between two mutexes (deadlock checking).
#define ACQUIRED_BEFORE(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function must be called with the capability held (and does not
/// release it).
#define REQUIRES(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability.
#define ACQUIRE(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held (it will
/// acquire it itself, or taking it would self-deadlock).
#define EXCLUDES(...) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use must
/// carry a comment explaining the invariant the analysis cannot see.
#define NO_THREAD_SAFETY_ANALYSIS \
  GRALMATCH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // GRALMATCH_COMMON_THREAD_ANNOTATIONS_H_

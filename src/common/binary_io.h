#ifndef GRALMATCH_COMMON_BINARY_IO_H_
#define GRALMATCH_COMMON_BINARY_IO_H_

/// \file binary_io.h
/// Endian-stable binary serialization primitives for the checkpoint format
/// (serve/checkpoint.h). All multi-byte integers are written little-endian
/// byte by byte, so a checkpoint written on any host loads on any other;
/// doubles are written as the little-endian bytes of their IEEE-754 bit
/// pattern, so round-trips are bit-exact. The reader bounds-checks every
/// read and returns a Status instead of crashing on truncated or corrupted
/// input.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gralmatch {

/// \brief Append-only little-endian encoder into an in-memory buffer.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern, little-endian: round-trips bit-exactly.
  void WriteDouble(double v);
  /// u64 length prefix followed by the raw bytes.
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t size);

  /// Overwrite the u64 previously written at `pos` (e.g. a length prefix
  /// back-patched after serializing directly into this buffer, instead of
  /// staging the payload in a second buffer). `pos + 8 <= size()` required.
  void PatchU64(size_t pos, uint64_t v);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
///
/// Every Read* returns an IOError Status when fewer bytes remain than the
/// value needs — a truncated checkpoint surfaces as a clean error, never as
/// an out-of-bounds read. The buffer must outlive the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  /// Zero-copy variant: `out` borrows from the reader's buffer and is valid
  /// only while that buffer lives.
  Status ReadStringView(std::string_view* out);

  /// Read a u64 element count that the remaining bytes can plausibly hold
  /// (each element occupies at least `min_element_size` bytes). Rejecting
  /// impossible counts up front keeps a corrupted length prefix from
  /// triggering a multi-gigabyte allocation before the bounds checks fire.
  Status ReadCount(size_t min_element_size, uint64_t* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash of a byte buffer (checkpoint payload checksum).
uint64_t Fnv1a64(std::string_view data);

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_BINARY_IO_H_

#ifndef GRALMATCH_COMMON_MUTEX_H_
#define GRALMATCH_COMMON_MUTEX_H_

/// \file mutex.h
/// Annotated synchronization wrappers over std::mutex and
/// std::condition_variable. Raw std:: synchronization is invisible to
/// Clang's Thread Safety Analysis; these thin wrappers carry the capability
/// attributes (common/thread_annotations.h), so every lock acquisition and
/// every access to GUARDED_BY state is machine-checked under
/// `-Wthread-safety` on the clang CI legs. Zero overhead: every member is a
/// one-line inline forward.
///
/// Rule (docs/static-analysis.md): new concurrent code uses gralmatch::Mutex
/// + MutexLock + CondVar, never bare std::mutex — tools/check_invariants.py
/// and code review hold the line.

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gralmatch {

/// \brief An annotated std::mutex: a TSA "capability".
///
/// Prefer the scoped MutexLock over manual Lock()/Unlock() pairs; the
/// analysis accepts both, but scopes cannot leak a held lock on an early
/// return.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped lock over a Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to a Mutex at each wait.
///
/// Wait() takes the Mutex explicitly and is annotated REQUIRES(mu), so
/// waiting without the lock held — or re-checking a GUARDED_BY predicate
/// outside it — is a compile error under the analysis. Use the
/// while-loop idiom:
///
///   MutexLock lock(&mu_);
///   while (!predicate_over_guarded_state) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `*mu`, block, and reacquire before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release ownership back to the caller's scope without unlocking.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_MUTEX_H_

#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace gralmatch {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string::npos) {
      out.append(s, pos, std::string::npos);
      return out;
    }
    out.append(s, pos, hit - pos);
    out.append(to);
    pos = hit + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string WithThousandsSep(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace gralmatch

#include "common/stopwatch.h"

#include <cstdio>

namespace gralmatch {

std::string Stopwatch::FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    int h = static_cast<int>(seconds / 3600.0);
    int m = static_cast<int>((seconds - h * 3600.0) / 60.0);
    std::snprintf(buf, sizeof(buf), "%dh %dmin", h, m);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f sec", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  }
  return buf;
}

std::string Stopwatch::ElapsedHuman() const {
  return FormatSeconds(ElapsedSeconds());
}

}  // namespace gralmatch

#include "common/status.h"

#include <cerrno>
#include <cstring>

namespace gralmatch {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIoError: return "IOError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotImplemented: return "NotImplemented";
  }
  return "Unknown";
}
}  // namespace

Status Status::IOErrorFromErrno(std::string msg) {
  // strerror is not required to be thread-safe, but glibc's returns a
  // pointer into immutable per-errno-value storage; copy it immediately
  // regardless so the Status owns its message.
  msg += ": ";
  msg += std::strerror(errno);
  return IOError(std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace gralmatch

#ifndef GRALMATCH_COMMON_STATUS_H_
#define GRALMATCH_COMMON_STATUS_H_

/// \file status.h
/// Status / Result error handling in the Arrow/RocksDB idiom. Fallible
/// operations return a Status (or Result<T>) instead of throwing across
/// module boundaries.

#include <optional>
#include <string>
#include <utility>

namespace gralmatch {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kInternal,
  kNotImplemented,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message. Statuses are cheap to copy (small string).
///
/// [[nodiscard]]: silently dropping a returned Status discards an error.
/// Callers must check it (or, where discarding is genuinely correct — e.g.
/// best-effort cleanup on an already-failing path — cast to void with a
/// comment saying why).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// IOError carrying the calling thread's current `errno` as a
  /// ": <strerror>" suffix. Call it *immediately* after the failing
  /// syscall — any intervening call may clobber errno.
  static Status IOErrorFromErrno(std::string msg);
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Render as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Access to the value when holding an error aborts
/// in debug builds; always check ok() first (or use ValueOrDie in tests).
///
/// [[nodiscard]] for the same reason as Status: an unexamined Result is a
/// dropped error (and a dropped value).
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& { return value_.value(); }
  T& ValueOrDie() & { return value_.value(); }
  T&& ValueOrDie() && { return std::move(value_).value(); }

  const T& operator*() const& { return value_.value(); }
  T& operator*() & { return value_.value(); }
  const T* operator->() const { return &value_.value(); }
  T* operator->() { return &value_.value(); }

  /// Move the value out, leaving the Result in an unspecified state.
  T MoveValueUnsafe() { return std::move(value_).value(); }

 private:
  Status status_;          // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Propagate a non-OK Status from an expression.
#define GRALMATCH_RETURN_NOT_OK(expr)           \
  do {                                          \
    ::gralmatch::Status _st = (expr);           \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define GRALMATCH_STATUS_CONCAT_IMPL(a, b) a##b
#define GRALMATCH_STATUS_CONCAT(a, b) GRALMATCH_STATUS_CONCAT_IMPL(a, b)

#define GRALMATCH_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                    \
  if (!result.ok()) return result.status();                \
  lhs = result.MoveValueUnsafe();

/// Assign the value of a Result expression or propagate its error Status.
/// The temporary's name embeds the line number (with proper two-step
/// expansion), so several uses can share one scope.
#define GRALMATCH_ASSIGN_OR_RETURN(lhs, expr) \
  GRALMATCH_ASSIGN_OR_RETURN_IMPL(            \
      GRALMATCH_STATUS_CONCAT(_gralmatch_result_, __LINE__), lhs, expr)

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_STATUS_H_

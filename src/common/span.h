#ifndef GRALMATCH_COMMON_SPAN_H_
#define GRALMATCH_COMMON_SPAN_H_

/// \file span.h
/// Minimal std::span stand-in (the repo builds as C++17). A Span is a
/// non-owning view over a contiguous sequence; it never allocates and never
/// outlives validity checks — callers guarantee the underlying storage stays
/// alive. Only the operations the batched-scoring APIs need are provided.

#include <cassert>
#include <cstddef>
#include <vector>

namespace gralmatch {

/// \brief Non-owning view over `size` contiguous elements of type T.
///
/// Use `Span<const T>` for read-only views. Implicitly constructible from
/// std::vector so scoring sites can pass their buffers directly.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, size_t size) : data_(data), size_(size) {}
  /// From a vector of the (possibly const-qualified) element type.
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<std::remove_const_t<T>, U>>>
  Span(std::vector<U>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<std::remove_const_t<T>, U> &&
                                        std::is_const_v<T>>>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT

  T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

  /// View of `count` elements starting at `offset` (must be in range).
  Span subspan(size_t offset, size_t count) const {
    assert(offset <= size_ && count <= size_ - offset);
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_SPAN_H_

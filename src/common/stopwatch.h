#ifndef GRALMATCH_COMMON_STOPWATCH_H_
#define GRALMATCH_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing for the experiment harnesses.

#include <chrono>
#include <string>

namespace gralmatch {

/// \brief Simple wall-clock stopwatch, started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Human-readable elapsed time, e.g. "1h 26min", "4.8 min", "31 sec".
  std::string ElapsedHuman() const;

  /// Format an arbitrary duration in seconds as in ElapsedHuman().
  static std::string FormatSeconds(double seconds);

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_STOPWATCH_H_

#ifndef GRALMATCH_COMMON_CLI_H_
#define GRALMATCH_COMMON_CLI_H_

/// \file cli.h
/// Minimal command-line flag parsing for the bench/example binaries.
/// Supports `--name value`, `--name=value`, and boolean `--name`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gralmatch {

/// \brief Parsed command-line flags.
class CliFlags {
 public:
  /// Parse argv; unknown flags are kept (benches decide what to accept).
  static CliFlags Parse(int argc, char** argv);

  /// True if --name was given (with or without a value).
  bool Has(const std::string& name) const;

  /// String value or fallback.
  std::string GetString(const std::string& name, const std::string& fallback) const;

  /// Integer value or fallback.
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Double value or fallback.
  double GetDouble(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_CLI_H_

#ifndef GRALMATCH_COMMON_CLI_H_
#define GRALMATCH_COMMON_CLI_H_

/// \file cli.h
/// Minimal command-line flag parsing for the bench/example binaries.
/// Supports `--name value`, `--name=value`, and boolean `--name`. A flag
/// given more than once keeps the last value (standard last-wins CLI
/// semantics, pinned by common_test.cc).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace gralmatch {

/// Parse a complete string as a base-10 int64. Unlike a bare strtoll, the
/// whole string must be consumed ("5x" is an error, not 5) and the value
/// must fit in int64 ("9223372036854775808" is an error, not a silent
/// clamp). Empty strings are errors; leading/trailing whitespace is not
/// accepted.
Result<int64_t> ParseInt64(const std::string& text);

/// Parse a complete string as a double, with the same whole-string and
/// range discipline as ParseInt64: trailing garbage and magnitudes outside
/// the double range are errors. Underflow to zero/subnormal is accepted.
Result<double> ParseDouble(const std::string& text);

/// \brief Parsed command-line flags.
class CliFlags {
 public:
  /// Parse argv; unknown flags are kept (benches decide what to accept).
  static CliFlags Parse(int argc, char** argv);

  /// True if --name was given (with or without a value).
  bool Has(const std::string& name) const;

  /// String value or fallback.
  std::string GetString(const std::string& name, const std::string& fallback) const;

  /// Integer value, or fallback when the flag is absent or value-less
  /// (`--name` with no value). A present but malformed value — trailing
  /// garbage, not a number, out of int64 range — prints a clear diagnostic
  /// and exits with status 2 instead of silently truncating (the pre-PR-5
  /// strtoll behaviour turned "--seed 5x" into 5 and "--seed x" into 0).
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Double value or fallback; same malformed-value discipline as GetInt.
  double GetDouble(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_CLI_H_

#ifndef GRALMATCH_COMMON_UNION_FIND_H_
#define GRALMATCH_COMMON_UNION_FIND_H_

/// \file union_find.h
/// Disjoint-set forest with path halving and union by size. Used for
/// connected components, transitive closure and entity merging in the data
/// generator.

#include <cstdint>
#include <numeric>
#include <vector>

namespace gralmatch {

/// \brief Disjoint-set union (union-find).
class UnionFind {
 public:
  explicit UnionFind(size_t n = 0) { Reset(n); }

  /// Reset to n singleton sets.
  void Reset(size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
    size_.assign(n, 1);
    num_sets_ = n;
  }

  /// Representative of x's set (with path halving).
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets of a and b; returns false if already joined.
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets.
  size_t num_sets() const { return num_sets_; }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_ = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_UNION_FIND_H_

#include "common/binary_io.h"

#include <cstring>

namespace gralmatch {

void BinaryWriter::WriteU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit IEEE-754");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buf_.append(s.data(), s.size());
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::PatchU64(size_t pos, uint64_t v) {
  for (int k = 0; k < 8; ++k) {
    buf_[pos + static_cast<size_t>(k)] =
        static_cast<char>((v >> (8 * k)) & 0xffu);
  }
}

Status BinaryReader::Take(size_t n, const char** out) {
  if (remaining() < n) {
    return Status::IOError("truncated input: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) +
                           ", have " + std::to_string(remaining()));
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* out) {
  const char* p = nullptr;
  GRALMATCH_RETURN_NOT_OK(Take(1, &p));
  *out = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* out) {
  const char* p = nullptr;
  GRALMATCH_RETURN_NOT_OK(Take(4, &p));
  uint32_t v = 0;
  for (int k = 0; k < 4; ++k) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[k])) << (8 * k);
  }
  *out = v;
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* out) {
  const char* p = nullptr;
  GRALMATCH_RETURN_NOT_OK(Take(8, &p));
  uint64_t v = 0;
  for (int k = 0; k < 8; ++k) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[k])) << (8 * k);
  }
  *out = v;
  return Status::OK();
}

Status BinaryReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  GRALMATCH_RETURN_NOT_OK(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  GRALMATCH_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* out) {
  uint64_t bits = 0;
  GRALMATCH_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  std::string_view view;
  GRALMATCH_RETURN_NOT_OK(ReadStringView(&view));
  out->assign(view.data(), view.size());
  return Status::OK();
}

Status BinaryReader::ReadStringView(std::string_view* out) {
  uint64_t size = 0;
  GRALMATCH_RETURN_NOT_OK(ReadCount(1, &size));
  const char* p = nullptr;
  GRALMATCH_RETURN_NOT_OK(Take(static_cast<size_t>(size), &p));
  *out = std::string_view(p, static_cast<size_t>(size));
  return Status::OK();
}

Status BinaryReader::ReadCount(size_t min_element_size, uint64_t* out) {
  uint64_t count = 0;
  GRALMATCH_RETURN_NOT_OK(ReadU64(&count));
  if (min_element_size > 0 &&
      count > remaining() / static_cast<uint64_t>(min_element_size)) {
    return Status::IOError("corrupted input: count " + std::to_string(count) +
                           " at offset " + std::to_string(pos_ - 8) +
                           " exceeds remaining " +
                           std::to_string(remaining()) + " bytes");
  }
  *out = count;
  return Status::OK();
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace gralmatch

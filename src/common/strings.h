#ifndef GRALMATCH_COMMON_STRINGS_H_
#define GRALMATCH_COMMON_STRINGS_H_

/// \file strings.h
/// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace gralmatch {

/// Split on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Strip leading/trailing whitespace.
std::string Trim(std::string_view s);

/// True if s starts with prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if s ends with suffix.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replace all occurrences of `from` with `to`.
std::string ReplaceAll(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousandsSep(long long value);

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_STRINGS_H_

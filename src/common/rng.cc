#include "common/rng.h"

#include <cmath>

namespace gralmatch {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Debiased via rejection sampling on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace gralmatch

#ifndef GRALMATCH_COMMON_RNG_H_
#define GRALMATCH_COMMON_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random number generation. Every stochastic component
/// in the library (data generation, pair sampling, weight init, shuffling)
/// takes an explicit Rng so that experiments are reproducible from a seed.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gralmatch {

/// \brief xoshiro256** generator seeded via SplitMix64.
///
/// Fast, high-quality, and deterministic across platforms (no reliance on
/// std::mt19937 distribution implementations, whose outputs are not
/// standardized for e.g. std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seed the generator deterministically.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty v.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Sample an index from unnormalized non-negative weights.
  /// Returns weights.size()-1 if all weights are zero.
  size_t WeightedChoice(const std::vector<double>& weights);

  /// Derive an independent child generator (for parallel determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_COMMON_RNG_H_

#include "nn/optimizer.h"

#include <cmath>

namespace gralmatch {

void Parameter::Init(const std::string& param_name, size_t rows, size_t cols,
                     Rng* rng, float std) {
  name = param_name;
  value = Matrix(rows, cols);
  grad = Matrix(rows, cols);
  m = Matrix(rows, cols);
  v = Matrix(rows, cols);
  if (std > 0.0f) {
    value.FillNormal(rng, std);
  } else if (std < 0.0f) {
    for (size_t i = 0; i < value.size(); ++i) value.data()[i] = 1.0f;
  }
}

void AdamOptimizer::Step(const std::vector<Parameter*>& params) {
  ++t_;

  if (options_.clip_norm > 0.0f) {
    double norm_sq = 0.0;
    for (Parameter* p : params) {
      const float* g = p->grad.data();
      for (size_t i = 0; i < p->size(); ++i) {
        norm_sq += static_cast<double>(g[i]) * g[i];
      }
    }
    double norm = std::sqrt(norm_sq);
    if (norm > options_.clip_norm) {
      float scale = static_cast<float>(options_.clip_norm / norm);
      for (Parameter* p : params) p->grad.Scale(scale);
    }
  }

  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (Parameter* p : params) {
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = p->m.data();
    float* v = p->v.data();
    for (size_t i = 0; i < p->size(); ++i) {
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g[i];
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g[i] * g[i];
      float m_hat = m[i] / bc1;
      float v_hat = v[i] / bc2;
      w[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
    p->ZeroGrad();
  }
}

}  // namespace gralmatch

#ifndef GRALMATCH_NN_MATRIX_H_
#define GRALMATCH_NN_MATRIX_H_

/// \file matrix.h
/// Minimal dense row-major float matrix used by the from-scratch transformer
/// (the DistilBERT stand-in; see DESIGN.md substitution table). Only the
/// operations the model needs are provided; all are cache-aware naive loops
/// tuned for the small dimensions involved (d_model <= 64).

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace gralmatch {

/// \brief Dense row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Set every element to zero.
  void Zero();

  /// Reshape to rows x cols, reusing the existing allocation when capacity
  /// allows. Element values are unspecified afterwards — callers must
  /// overwrite every element. This is what lets the forward-pass workspaces
  /// cycle through layers and batches without touching the allocator.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Resize(rows, cols) followed by zero-fill, again reusing capacity.
  void ResizeZero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  /// Fill with N(0, std^2) (Xavier/Glorot-style init chooses std).
  void FillNormal(Rng* rng, float std);

  /// this += other (shapes must match).
  void Add(const Matrix& other);

  /// this *= s.
  void Scale(float s);

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized in
/// place (its allocation is reused when large enough) and must not alias
/// `a` or `b`.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n). Same resize-in-
/// place and no-alias rules as MatMul.
void MatMulTN(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n). Same resize-in-
/// place and no-alias rules as MatMul.
void MatMulNT(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b (accumulating variant of MatMul; `out` must be presized).
void MatMulAcc(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace gralmatch

#endif  // GRALMATCH_NN_MATRIX_H_

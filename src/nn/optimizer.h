#ifndef GRALMATCH_NN_OPTIMIZER_H_
#define GRALMATCH_NN_OPTIMIZER_H_

/// \file optimizer.h
/// Trainable parameter tensors and the Adam optimizer used for fine-tuning
/// the transformer matcher.

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace gralmatch {

/// \brief One trainable tensor: value, accumulated gradient and Adam moments.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;
  Matrix m;  ///< Adam first moment
  Matrix v;  ///< Adam second moment

  /// Allocate and initialize with N(0, std^2); std == 0 leaves zeros
  /// (biases, LayerNorm beta) and std < 0 fills with ones (LayerNorm gamma).
  void Init(const std::string& param_name, size_t rows, size_t cols, Rng* rng,
            float std);

  void ZeroGrad() { grad.Zero(); }
  size_t size() const { return value.size(); }
};

/// \brief Adam with bias correction and optional gradient clipping.
class AdamOptimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    /// Clip the global gradient norm to this value (0 disables clipping).
    float clip_norm = 1.0f;
  };

  AdamOptimizer() : options_() {}
  explicit AdamOptimizer(Options options) : options_(options) {}

  /// Apply one update to every parameter and zero the gradients.
  void Step(const std::vector<Parameter*>& params);

  /// Number of updates applied so far.
  int64_t step_count() const { return t_; }

  Options* mutable_options() { return &options_; }

 private:
  Options options_;
  int64_t t_ = 0;
};

}  // namespace gralmatch

#endif  // GRALMATCH_NN_OPTIMIZER_H_

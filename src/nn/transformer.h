#ifndef GRALMATCH_NN_TRANSFORMER_H_
#define GRALMATCH_NN_TRANSFORMER_H_

/// \file transformer.h
/// From-scratch transformer encoder for sequence-pair classification — the
/// stand-in for DistilBERT fine-tuning in the paper (see DESIGN.md). The
/// architecture mirrors the standard pre-LN encoder: token + position
/// embeddings, `num_layers` blocks of multi-head self-attention and a
/// position-wise feed-forward network with residual connections, a final
/// LayerNorm, and a softmax classification head on the [CLS] position.
/// Forward, backward (manual backprop) and Adam updates are implemented
/// directly; no external ML runtime is used.

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "nn/optimizer.h"

namespace gralmatch {

/// Model hyperparameters. Scaled for single-core CPU fine-tuning; the
/// relative behaviours under study (precision/recall trade-offs across
/// training-set sizes and serializations) survive the scaling.
struct TransformerConfig {
  int32_t vocab_size = 0;
  size_t d_model = 32;
  size_t num_heads = 2;
  size_t num_layers = 2;
  size_t d_ff = 64;
  size_t max_seq_len = 48;
  size_t num_classes = 2;
  uint64_t seed = 1234;
  /// Initialize the attention Q/K projections near the identity matrix.
  /// A pretrained BERT arrives with attention heads that align identical /
  /// similar tokens across the two records of a pair; a from-scratch model
  /// has to discover that circuit from few labelled pairs. Identity-
  /// initialized Q/K builds the token-alignment prior in at step zero and
  /// substitutes for that part of pretraining (see DESIGN.md).
  bool identity_attention_init = true;
};

/// \brief Input sequence for the classifier.
///
/// Besides token ids, a sequence may carry per-position segment ids (which
/// record of the pair a token belongs to) and "shared" flags marking tokens
/// that occur in BOTH records. Pretrained BERT-family models arrive with
/// attention heads that align identical tokens across the two records; a
/// from-scratch model at this data scale cannot discover that circuit, so
/// the alignment is provided as an input feature (a standard interaction
/// feature in neural entity matching; see DESIGN.md substitution table).
/// Empty segment/shared vectors are treated as all-zero.
struct EncodedSequence {
  std::vector<int32_t> tokens;
  std::vector<int8_t> segments;  ///< 0 = first record, 1 = second record
  std::vector<int8_t> shared;    ///< 1 = token occurs in both records
};

/// \brief Transformer encoder with a classification head.
class TransformerClassifier {
 public:
  explicit TransformerClassifier(TransformerConfig config);

  /// Class probabilities for a sequence. Sequences longer than max_seq_len
  /// are truncated (the paper's 128- vs 256-token variants are reproduced
  /// through this limit).
  std::vector<float> Predict(const EncodedSequence& input) const;
  std::vector<float> Predict(const std::vector<int32_t>& tokens) const {
    return Predict(EncodedSequence{tokens, {}, {}});
  }

  /// Class probabilities for a whole batch in one packed forward pass; row s
  /// of the returned (inputs.size() x num_classes) matrix is the prediction
  /// for inputs[s]. Sequences are concatenated row-wise (no padding): the
  /// row-independent kernels run over the packed activations and attention
  /// runs per sequence, so row s is bitwise-identical to Predict(inputs[s])
  /// — batching amortizes allocations and weight-matrix traffic, it never
  /// changes scores (tests/nn_test.cc pins this). Sequences must be
  /// non-empty.
  Matrix PredictBatch(Span<const EncodedSequence> inputs) const;

  /// Forward + backward for one example; accumulates gradients and returns
  /// the cross-entropy loss.
  float ForwardBackward(const EncodedSequence& input, int label);
  float ForwardBackward(const std::vector<int32_t>& tokens, int label) {
    return ForwardBackward(EncodedSequence{tokens, {}, {}}, label);
  }

  /// Cross-entropy loss of a prediction without touching gradients.
  float Loss(const EncodedSequence& input, int label) const;
  float Loss(const std::vector<int32_t>& tokens, int label) const {
    return Loss(EncodedSequence{tokens, {}, {}}, label);
  }

  /// Apply one Adam update (and zero gradients).
  void Step();

  /// All trainable tensors (for tests and checkpointing).
  std::vector<Parameter*> parameters();

  const TransformerConfig& config() const { return config_; }

  /// Total number of trainable scalars.
  size_t NumParameters() const;

  /// Serialize weights to a binary file.
  Status Save(const std::string& path) const;

  /// Load weights from Save()'s format; the stored config must match.
  Status Load(const std::string& path);

  AdamOptimizer::Options* mutable_optimizer_options() {
    return optimizer_.mutable_options();
  }

  /// Copy weights from another model with identical config (used to restore
  /// the best-validation-epoch snapshot).
  void CopyWeightsFrom(const TransformerClassifier& other);

 private:
  struct LayerParams {
    Parameter ln1_gamma, ln1_beta;
    Parameter wq, wk, wv, wo;
    Parameter ln2_gamma, ln2_beta;
    Parameter w1, b1, w2, b2;
  };

  struct LayerCache;
  struct ForwardCache;

  /// Shared forward pass; cache may be null for inference.
  std::vector<float> ForwardImpl(const EncodedSequence& input,
                                 ForwardCache* cache) const;
  void BackwardImpl(const EncodedSequence& input, int label,
                    const ForwardCache& cache, const std::vector<float>& probs);

  TransformerConfig config_;
  Parameter embed_;  ///< vocab_size x d_model
  Parameter pos_;    ///< max_seq_len x d_model
  Parameter seg_;    ///< 2 x d_model (record A / record B)
  Parameter shared_; ///< 2 x d_model (token unshared / shared across pair)
  std::vector<LayerParams> layers_;
  Parameter lnf_gamma_, lnf_beta_;
  Parameter wc_, bc_;  ///< classifier head
  AdamOptimizer optimizer_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_NN_TRANSFORMER_H_

#ifndef GRALMATCH_NN_TRAINER_H_
#define GRALMATCH_NN_TRAINER_H_

/// \file trainer.h
/// Fine-tuning driver reproducing the paper's protocol (§5.2): train for a
/// few epochs on labelled pairs and keep the epoch with the lowest
/// validation loss.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/transformer.h"

namespace gralmatch {

/// One labelled training example: a token sequence (with optional segment
/// ids and shared-token flags) and a binary label (1 = Match, 0 = NoMatch).
struct TrainExample {
  std::vector<int32_t> tokens;
  std::vector<int8_t> segments;
  std::vector<int8_t> shared;
  int label = 0;

  EncodedSequence AsSequence() const { return {tokens, segments, shared}; }
};

/// Confusion-matrix-based binary classification metrics.
struct BinaryMetrics {
  int64_t tp = 0, fp = 0, fn = 0, tn = 0;

  double Precision() const { return tp + fp == 0 ? 0.0 : double(tp) / (tp + fp); }
  double Recall() const { return tp + fn == 0 ? 0.0 : double(tp) / (tp + fn); }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    int64_t n = tp + fp + fn + tn;
    return n == 0 ? 0.0 : double(tp + tn) / double(n);
  }
};

/// Per-epoch training statistics.
struct EpochStats {
  double train_loss = 0.0;
  double val_loss = 0.0;
  BinaryMetrics val_metrics;
};

/// Outcome of a fine-tuning run.
struct TrainResult {
  std::vector<EpochStats> epochs;
  size_t best_epoch = 0;      ///< epoch restored into the model (lowest val loss)
  double train_seconds = 0.0;
};

/// \brief Epoch/batch training loop with best-epoch restoration.
class Trainer {
 public:
  struct Options {
    size_t epochs = 5;          ///< the paper fine-tunes for 5 epochs
    size_t batch_size = 16;
    float lr = 1e-3f;
    uint64_t shuffle_seed = 99;
    bool verbose = false;       ///< print per-epoch losses to stderr
  };

  Trainer() : options_() {}
  explicit Trainer(Options options) : options_(options) {}

  /// Fine-tune `model` on `train`, selecting the best epoch on `val`.
  /// The model is left holding the best epoch's weights.
  TrainResult Fit(TransformerClassifier* model,
                  const std::vector<TrainExample>& train,
                  const std::vector<TrainExample>& val) const;

  /// Mean loss and confusion metrics of `model` on `examples`
  /// (prediction = argmax class; class 1 is "Match").
  static EpochStats Evaluate(const TransformerClassifier& model,
                             const std::vector<TrainExample>& examples);

 private:
  Options options_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_NN_TRAINER_H_

#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common/stopwatch.h"

namespace gralmatch {

EpochStats Trainer::Evaluate(const TransformerClassifier& model,
                             const std::vector<TrainExample>& examples) {
  EpochStats stats;
  double loss = 0.0;
  for (const auto& ex : examples) {
    auto probs = model.Predict(ex.AsSequence());
    loss += -std::log(std::max(probs[static_cast<size_t>(ex.label)], 1e-12f));
    bool predicted_match = probs[1] >= probs[0];
    if (predicted_match && ex.label == 1) ++stats.val_metrics.tp;
    else if (predicted_match && ex.label == 0) ++stats.val_metrics.fp;
    else if (!predicted_match && ex.label == 1) ++stats.val_metrics.fn;
    else ++stats.val_metrics.tn;
  }
  stats.val_loss = examples.empty() ? 0.0 : loss / double(examples.size());
  return stats;
}

TrainResult Trainer::Fit(TransformerClassifier* model,
                         const std::vector<TrainExample>& train,
                         const std::vector<TrainExample>& val) const {
  TrainResult result;
  Stopwatch watch;
  model->mutable_optimizer_options()->lr = options_.lr;

  Rng rng(options_.shuffle_seed);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  // Snapshot of the best epoch's weights.
  TransformerClassifier best(model->config());
  double best_val_loss = std::numeric_limits<double>::infinity();
  size_t best_epoch = 0;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t idx : order) {
      const TrainExample& ex = train[idx];
      epoch_loss += model->ForwardBackward(ex.AsSequence(), ex.label);
      if (++in_batch == options_.batch_size) {
        model->Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) model->Step();

    EpochStats stats = Evaluate(*model, val);
    stats.train_loss = train.empty() ? 0.0 : epoch_loss / double(train.size());
    if (options_.verbose) {
      std::fprintf(stderr,
                   "  epoch %zu: train_loss=%.4f val_loss=%.4f val_f1=%.4f\n",
                   epoch + 1, stats.train_loss, stats.val_loss,
                   stats.val_metrics.F1());
    }
    if (stats.val_loss < best_val_loss) {
      best_val_loss = stats.val_loss;
      best_epoch = epoch;
      best.CopyWeightsFrom(*model);
    }
    result.epochs.push_back(stats);
  }

  model->CopyWeightsFrom(best);
  result.best_epoch = best_epoch;
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace gralmatch

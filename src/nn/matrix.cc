#include "nn/matrix.h"

#include <cassert>
#include <cstring>

#include "nn/simd.h"

namespace gralmatch {

void Matrix::Zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

void Matrix::FillNormal(Rng* rng, float std) {
  for (auto& x : data_) x = static_cast<float>(rng->Normal()) * std;
}

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  float* a = data_.data();
  const float* b = other.data_.data();
  const size_t n = data_.size();
  GRALMATCH_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
}

void Matrix::Scale(float s) {
  float* a = data_.data();
  const size_t n = data_.size();
  GRALMATCH_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) a[i] *= s;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  out->ResizeZero(a.rows(), b.cols());
  MatMulAcc(a, b, out);
}

// Register-blocked saxpy formulation: each output row accumulates rank-1
// contributions in p-order, with the j-loop as the vector lane. Unrolling
// pairs of p keeps per-element addition order identical to the reference
// loop (out[j] += a0*b0[j]; out[j] += a1*b1[j]) while halving the passes
// over the output row. The av == 0 skip is preserved exactly: += 0*b[j]
// is not a bitwise no-op (-0.0 + 0.0 flips to +0.0, NaN/inf propagate).
void MatMulAcc(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out->rows() == a.rows() && out->cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    float* out_row = out->row(i);
    const float* a_row = a.row(i);
    size_t p = 0;
    for (; p + 1 < k; p += 2) {
      const float av0 = a_row[p];
      const float av1 = a_row[p + 1];
      const float* b0 = b.row(p);
      const float* b1 = b.row(p + 1);
      if (av0 != 0.0f && av1 != 0.0f) {
        GRALMATCH_SIMD_LOOP
        for (size_t j = 0; j < n; ++j) {
          out_row[j] += av0 * b0[j];
          out_row[j] += av1 * b1[j];
        }
      } else if (av0 != 0.0f) {
        GRALMATCH_SIMD_LOOP
        for (size_t j = 0; j < n; ++j) out_row[j] += av0 * b0[j];
      } else if (av1 != 0.0f) {
        GRALMATCH_SIMD_LOOP
        for (size_t j = 0; j < n; ++j) out_row[j] += av1 * b1[j];
      }
    }
    if (p < k) {
      const float av = a_row[p];
      if (av != 0.0f) {
        const float* b_row = b.row(p);
        GRALMATCH_SIMD_LOOP
        for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  }
}

void MatMulTN(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  out->ResizeZero(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p);
    const float* b_row = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out->row(i);
      GRALMATCH_SIMD_LOOP
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

// Dot-product formulation: the inner p-loop is a serial reduction on
// purpose. Vectorizing it would reorder the partial sums and change
// low-order bits, breaking the bitwise batch-vs-per-pair and SIMD-vs-scalar
// equivalences (see nn/simd.h). The j-loop amortizes a_row loads instead.
void MatMulNT(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  // Every element is assigned below, so a plain Resize (no zero-fill)
  // suffices.
  out->Resize(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* out_row = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j);
      float sum = 0.0f;
      for (size_t p = 0; p < k; ++p) sum += a_row[p] * b_row[p];
      out_row[j] = sum;
    }
  }
}

}  // namespace gralmatch

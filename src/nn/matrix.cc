#include "nn/matrix.h"

#include <cassert>
#include <cstring>

namespace gralmatch {

void Matrix::Zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

void Matrix::FillNormal(Rng* rng, float std) {
  for (auto& x : data_) x = static_cast<float>(rng->Normal()) * std;
}

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& x : data_) x *= s;
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  *out = Matrix(a.rows(), b.cols());
  MatMulAcc(a, b, out);
}

void MatMulAcc(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out->rows() == a.rows() && out->cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    float* out_row = out->row(i);
    const float* a_row = a.row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.row(p);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulTN(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  *out = Matrix(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p);
    const float* b_row = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out->row(i);
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulNT(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  *out = Matrix(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* out_row = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j);
      float sum = 0.0f;
      for (size_t p = 0; p < k; ++p) sum += a_row[p] * b_row[p];
      out_row[j] = sum;
    }
  }
}

}  // namespace gralmatch

#include "nn/transformer.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "nn/simd.h"

namespace gralmatch {

namespace {

/// LayerNorm forward over each row of x. Stores normalized rows in `xhat`
/// and per-row 1/std in `inv_std` for the backward pass. Rows are
/// independent, so running it over a packed multi-sequence matrix is
/// bitwise-identical to running it per sequence.
void LayerNormForward(const Matrix& x, const Parameter& gamma,
                      const Parameter& beta, Matrix* y, Matrix* xhat,
                      std::vector<float>* inv_std) {
  const size_t rows = x.rows(), d = x.cols();
  y->Resize(rows, d);
  xhat->Resize(rows, d);
  inv_std->assign(rows, 0.0f);
  for (size_t i = 0; i < rows; ++i) {
    const float* xi = x.row(i);
    float mean = 0.0f;
    for (size_t j = 0; j < d; ++j) mean += xi[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      float c = xi[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    float istd = 1.0f / std::sqrt(var + 1e-5f);
    (*inv_std)[i] = istd;
    float* xh = xhat->row(i);
    float* yi = y->row(i);
    const float* g = gamma.value.data();
    const float* be = beta.value.data();
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < d; ++j) {
      xh[j] = (xi[j] - mean) * istd;
      yi[j] = xh[j] * g[j] + be[j];
    }
  }
}

/// LayerNorm backward. Accumulates parameter grads and writes dx (adding to
/// `dx_out` which must be presized and may already hold residual gradient).
void LayerNormBackward(const Matrix& dy, const Matrix& xhat,
                       const std::vector<float>& inv_std, Parameter* gamma,
                       Parameter* beta, Matrix* dx_out) {
  const size_t rows = dy.rows(), d = dy.cols();
  for (size_t i = 0; i < rows; ++i) {
    const float* dyi = dy.row(i);
    const float* xh = xhat.row(i);
    float* dgamma = gamma->grad.data();
    float* dbeta = beta->grad.data();
    const float* g = gamma->value.data();

    float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      dgamma[j] += dyi[j] * xh[j];
      dbeta[j] += dyi[j];
      float dxhat = dyi[j] * g[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[j];
    }
    float* dxi = dx_out->row(i);
    const float inv_d = 1.0f / static_cast<float>(d);
    for (size_t j = 0; j < d; ++j) {
      float dxhat = dyi[j] * g[j];
      dxi[j] += inv_std[i] * (dxhat - inv_d * sum_dxhat -
                              inv_d * xh[j] * sum_dxhat_xhat);
    }
  }
}

/// Copy head slice [h*dh, (h+1)*dh) of rows [row_begin, row_begin + rows) of
/// src into dst (rows x dh). The packed batch forward slices one sequence's
/// row range; the single-sequence path passes row_begin = 0.
void SliceHeadRange(const Matrix& src, size_t row_begin, size_t rows, size_t h,
                    size_t dh, Matrix* dst) {
  dst->Resize(rows, dh);
  for (size_t i = 0; i < rows; ++i) {
    std::memcpy(dst->row(i), src.row(row_begin + i) + h * dh,
                dh * sizeof(float));
  }
}

/// Copy head slice [h*dh, (h+1)*dh) of src (L x D) into dst (L x dh).
void SliceHead(const Matrix& src, size_t h, size_t dh, Matrix* dst) {
  SliceHeadRange(src, 0, src.rows(), h, dh, dst);
}

/// Accumulate a head slice back into a row range:
/// dst[row_begin + i, h*dh:(h+1)*dh] += src[i, :].
void UnsliceHeadRangeAcc(const Matrix& src, size_t row_begin, size_t h,
                         size_t dh, Matrix* dst) {
  const size_t rows = src.rows();
  for (size_t i = 0; i < rows; ++i) {
    float* d = dst->row(row_begin + i) + h * dh;
    const float* s = src.row(i);
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < dh; ++j) d[j] += s[j];
  }
}

/// Accumulate a head slice back: dst[:, h*dh:(h+1)*dh] += src.
void UnsliceHeadAcc(const Matrix& src, size_t h, size_t dh, Matrix* dst) {
  UnsliceHeadRangeAcc(src, 0, h, dh, dst);
}

/// Scaled row-wise softmax with max-subtraction, in place. Shared by the
/// single-sequence and packed batch forwards so the operation sequence per
/// row is identical by construction. The max and sum are serial reductions
/// on purpose (see nn/simd.h); the final normalization is elementwise.
void AttentionSoftmaxRows(Matrix* scores, float scale) {
  const size_t rows = scores->rows(), cols = scores->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = scores->row(i);
    float mx = -1e30f;
    for (size_t j = 0; j < cols; ++j) {
      row[j] *= scale;
      if (row[j] > mx) mx = row[j];
    }
    float sum = 0.0f;
    for (size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    float inv = 1.0f / sum;
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

/// h += bias (broadcast over rows), then ReLU. Row-independent.
void AddBiasReLU(Matrix* h, const Parameter& bias) {
  const size_t rows = h->rows(), cols = h->cols();
  const float* b = bias.value.data();
  for (size_t i = 0; i < rows; ++i) {
    float* row = h->row(i);
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < cols; ++j) {
      row[j] += b[j];
      if (row[j] < 0.0f) row[j] = 0.0f;  // ReLU
    }
  }
}

/// h += bias (broadcast over rows). Row-independent.
void AddBias(Matrix* h, const Parameter& bias) {
  const size_t rows = h->rows(), cols = h->cols();
  const float* b = bias.value.data();
  for (size_t i = 0; i < rows; ++i) {
    float* row = h->row(i);
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < cols; ++j) row[j] += b[j];
  }
}

/// Token + position + segment + shared-flag embeddings of a sequence's first
/// `len` tokens, written into rows [row_begin, row_begin + len) of x.
void EmbedSequenceRows(const EncodedSequence& input, size_t len,
                       int32_t vocab_size, const Parameter& embed,
                       const Parameter& pos, const Parameter& seg,
                       const Parameter& shared, size_t row_begin, Matrix* x) {
  const size_t d = x->cols();
  for (size_t i = 0; i < len; ++i) {
    int32_t tok = input.tokens[i];
    if (tok < 0 || tok >= vocab_size) tok = 0;
    const float* e = embed.value.row(static_cast<size_t>(tok));
    const float* p = pos.value.row(i);
    const float* sg =
        seg.value.row(i < input.segments.size() && input.segments[i] ? 1 : 0);
    const float* sh =
        shared.value.row(i < input.shared.size() && input.shared[i] ? 1 : 0);
    float* xi = x->row(row_begin + i);
    GRALMATCH_SIMD_LOOP
    for (size_t j = 0; j < d; ++j) xi[j] = e[j] + p[j] + sg[j] + sh[j];
  }
}

/// Classification head + softmax on one final-LayerNorm [CLS] row, written
/// into out[0, num_classes).
void ClassifyClsRow(const float* cls, const Parameter& wc, const Parameter& bc,
                    size_t d, size_t num_classes, float* out) {
  for (size_t c = 0; c < num_classes; ++c) {
    float sum = bc.value.data()[c];
    for (size_t j = 0; j < d; ++j) sum += cls[j] * wc.value.at(j, c);
    out[c] = sum;
  }
  float mx = out[0];
  for (size_t c = 0; c < num_classes; ++c) mx = std::max(mx, out[c]);
  float sum = 0.0f;
  for (size_t c = 0; c < num_classes; ++c) {
    out[c] = std::exp(out[c] - mx);
    sum += out[c];
  }
  for (size_t c = 0; c < num_classes; ++c) out[c] /= sum;
}

}  // namespace

struct TransformerClassifier::LayerCache {
  Matrix x;            // block input (L x D)
  Matrix ln1_xhat;     // LayerNorm1 cache
  std::vector<float> ln1_inv_std;
  Matrix y;            // LN1 output
  Matrix q, k, v;      // projections (L x D)
  std::vector<Matrix> attn;  // per-head attention weights (L x L)
  Matrix o;            // concatenated head outputs (L x D)
  Matrix x2;           // after attention residual
  Matrix ln2_xhat;
  std::vector<float> ln2_inv_std;
  Matrix y2;           // LN2 output
  Matrix h1;           // ReLU activations (L x F)
  Matrix x3;           // block output
};

struct TransformerClassifier::ForwardCache {
  size_t seq_len = 0;
  Matrix x0;  // embeddings input to first block
  std::vector<LayerCache> layers;
  Matrix lnf_xhat;
  std::vector<float> lnf_inv_std;
  Matrix yf;  // final LN output
};

TransformerClassifier::TransformerClassifier(TransformerConfig config)
    : config_(config) {
  Rng rng(config_.seed);
  const size_t d = config_.d_model;
  const float std_embed = 0.02f;
  const float std_proj = 1.0f / std::sqrt(static_cast<float>(d));

  embed_.Init("embed", static_cast<size_t>(config_.vocab_size), d, &rng,
              std_embed);
  pos_.Init("pos", config_.max_seq_len, d, &rng, std_embed);
  seg_.Init("seg", 2, d, &rng, std_embed);
  shared_.Init("shared", 2, d, &rng, std_embed);
  layers_.resize(config_.num_layers);
  for (size_t l = 0; l < config_.num_layers; ++l) {
    LayerParams& p = layers_[l];
    auto n = [&](const char* base) {
      return "layer" + std::to_string(l) + "." + base;
    };
    p.ln1_gamma.Init(n("ln1_gamma"), 1, d, &rng, -1.0f);
    p.ln1_beta.Init(n("ln1_beta"), 1, d, &rng, 0.0f);
    p.wq.Init(n("wq"), d, d, &rng, std_proj);
    p.wk.Init(n("wk"), d, d, &rng, std_proj);
    if (config_.identity_attention_init) {
      // Identity + small noise: heads start out matching equal tokens.
      const float kNoise = 0.05f;
      p.wq.value.Scale(kNoise);
      p.wk.value.Scale(kNoise);
      for (size_t j = 0; j < d; ++j) {
        p.wq.value.at(j, j) += 1.0f;
        p.wk.value.at(j, j) += 1.0f;
      }
    }
    p.wv.Init(n("wv"), d, d, &rng, std_proj);
    p.wo.Init(n("wo"), d, d, &rng, std_proj);
    p.ln2_gamma.Init(n("ln2_gamma"), 1, d, &rng, -1.0f);
    p.ln2_beta.Init(n("ln2_beta"), 1, d, &rng, 0.0f);
    p.w1.Init(n("w1"), d, config_.d_ff, &rng, std_proj);
    p.b1.Init(n("b1"), 1, config_.d_ff, &rng, 0.0f);
    p.w2.Init(n("w2"), config_.d_ff, d, &rng,
              1.0f / std::sqrt(static_cast<float>(config_.d_ff)));
    p.b2.Init(n("b2"), 1, d, &rng, 0.0f);
  }
  lnf_gamma_.Init("lnf_gamma", 1, d, &rng, -1.0f);
  lnf_beta_.Init("lnf_beta", 1, d, &rng, 0.0f);
  wc_.Init("wc", d, config_.num_classes, &rng, std_proj);
  bc_.Init("bc", 1, config_.num_classes, &rng, 0.0f);
}

std::vector<Parameter*> TransformerClassifier::parameters() {
  std::vector<Parameter*> out = {&embed_, &pos_, &seg_, &shared_};
  for (auto& p : layers_) {
    out.insert(out.end(),
               {&p.ln1_gamma, &p.ln1_beta, &p.wq, &p.wk, &p.wv, &p.wo,
                &p.ln2_gamma, &p.ln2_beta, &p.w1, &p.b1, &p.w2, &p.b2});
  }
  out.insert(out.end(), {&lnf_gamma_, &lnf_beta_, &wc_, &bc_});
  return out;
}

size_t TransformerClassifier::NumParameters() const {
  size_t total = 0;
  auto* self = const_cast<TransformerClassifier*>(this);
  for (Parameter* p : self->parameters()) total += p->size();
  return total;
}

std::vector<float> TransformerClassifier::ForwardImpl(
    const EncodedSequence& input, ForwardCache* cache) const {
  const std::vector<int32_t>& tokens = input.tokens;
  const size_t d = config_.d_model;
  const size_t heads = config_.num_heads;
  const size_t dh = d / heads;
  const size_t len = std::min(tokens.size(), config_.max_seq_len);

  Matrix x(len, d);
  EmbedSequenceRows(input, len, config_.vocab_size, embed_, pos_, seg_,
                    shared_, /*row_begin=*/0, &x);
  if (cache) {
    cache->seq_len = len;
    cache->x0 = x;
    cache->layers.resize(config_.num_layers);
  }

  Matrix y, q, k, v;
  for (size_t l = 0; l < config_.num_layers; ++l) {
    const LayerParams& p = layers_[l];
    LayerCache* lc = cache ? &cache->layers[l] : nullptr;
    if (lc) lc->x = x;

    // --- Attention sublayer (pre-LN) ---
    Matrix xhat;
    std::vector<float> inv_std;
    LayerNormForward(x, p.ln1_gamma, p.ln1_beta, &y, &xhat, &inv_std);
    if (lc) {
      lc->ln1_xhat = std::move(xhat);
      lc->ln1_inv_std = std::move(inv_std);
      lc->y = y;
    }
    MatMul(y, p.wq.value, &q);
    MatMul(y, p.wk.value, &k);
    MatMul(y, p.wv.value, &v);
    if (lc) {
      lc->q = q;
      lc->k = k;
      lc->v = v;
      lc->attn.resize(heads);
    }

    Matrix o(len, d);
    o.Zero();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    Matrix qh, kh, vh, scores, oh;
    for (size_t h = 0; h < heads; ++h) {
      SliceHead(q, h, dh, &qh);
      SliceHead(k, h, dh, &kh);
      SliceHead(v, h, dh, &vh);
      MatMulNT(qh, kh, &scores);
      AttentionSoftmaxRows(&scores, scale);
      if (lc) lc->attn[h] = scores;
      MatMul(scores, vh, &oh);
      UnsliceHeadAcc(oh, h, dh, &o);
    }
    if (lc) lc->o = o;

    Matrix z;
    MatMul(o, p.wo.value, &z);
    Matrix x2 = x;
    x2.Add(z);
    if (lc) lc->x2 = x2;

    // --- Feed-forward sublayer (pre-LN) ---
    Matrix y2, xhat2;
    std::vector<float> inv_std2;
    LayerNormForward(x2, p.ln2_gamma, p.ln2_beta, &y2, &xhat2, &inv_std2);
    Matrix h1;
    MatMul(y2, p.w1.value, &h1);
    AddBiasReLU(&h1, p.b1);
    Matrix f2;
    MatMul(h1, p.w2.value, &f2);
    AddBias(&f2, p.b2);
    Matrix x3 = x2;
    x3.Add(f2);
    if (lc) {
      lc->ln2_xhat = std::move(xhat2);
      lc->ln2_inv_std = std::move(inv_std2);
      lc->y2 = std::move(y2);
      lc->h1 = std::move(h1);
      lc->x3 = x3;
    }
    x = std::move(x3);
  }

  // Final LayerNorm + classification on the [CLS] position (row 0).
  Matrix yf, xhat_f;
  std::vector<float> inv_std_f;
  LayerNormForward(x, lnf_gamma_, lnf_beta_, &yf, &xhat_f, &inv_std_f);
  if (cache) {
    cache->lnf_xhat = std::move(xhat_f);
    cache->lnf_inv_std = std::move(inv_std_f);
    cache->yf = yf;
  }

  std::vector<float> probs(config_.num_classes, 0.0f);
  ClassifyClsRow(yf.row(0), wc_, bc_, d, config_.num_classes, probs.data());
  return probs;
}

std::vector<float> TransformerClassifier::Predict(
    const EncodedSequence& input) const {
  return ForwardImpl(input, nullptr);
}

Matrix TransformerClassifier::PredictBatch(
    Span<const EncodedSequence> inputs) const {
  const size_t batch = inputs.size();
  Matrix probs(batch, config_.num_classes);
  if (batch == 0) return probs;

  const size_t d = config_.d_model;
  const size_t heads = config_.num_heads;
  const size_t dh = d / heads;

  // Packed (length-concatenated) layout: sequence s owns rows
  // [offset[s], offset[s+1]) of every activation matrix. No padding rows
  // exist, so no FLOP is spent on pad tokens and no masking is needed —
  // every row-independent kernel (LayerNorm, projections, FFN) runs over
  // the packed matrix and is bitwise-identical per row to the
  // single-sequence forward; only attention, which couples rows within one
  // sequence, runs per sequence on its row range.
  //
  // All activations live in a thread-local workspace whose buffers are
  // reshaped in place (Matrix::Resize keeps capacity), so steady-state
  // scoring performs no heap allocation at all. Without this, every packed
  // activation matrix is large enough to hit the allocator's mmap path and
  // the page-fault churn erases the batching win. Reuse is value-
  // transparent: every buffer is fully overwritten (or zero-filled) before
  // it is read, so results never depend on what a previous call left
  // behind.
  struct Workspace {
    std::vector<size_t> offset;
    Matrix x, y, q, k, v, o, z, x2, y2, h1, f2, xhat, yf;
    std::vector<float> inv_std;
    Matrix qh, kh, vh, scores, oh;
  };
  thread_local Workspace ws;

  std::vector<size_t>& offset = ws.offset;
  offset.assign(batch + 1, 0);
  for (size_t s = 0; s < batch; ++s) {
    assert(!inputs[s].tokens.empty() && "PredictBatch: empty sequence");
    offset[s + 1] =
        offset[s] + std::min(inputs[s].tokens.size(), config_.max_seq_len);
  }
  const size_t total = offset[batch];

  Matrix& x = ws.x;
  x.Resize(total, d);
  for (size_t s = 0; s < batch; ++s) {
    EmbedSequenceRows(inputs[s], offset[s + 1] - offset[s], config_.vocab_size,
                      embed_, pos_, seg_, shared_, offset[s], &x);
  }

  Matrix& y = ws.y;
  Matrix& q = ws.q;
  Matrix& k = ws.k;
  Matrix& v = ws.v;
  Matrix& o = ws.o;
  Matrix& z = ws.z;
  Matrix& x2 = ws.x2;
  Matrix& y2 = ws.y2;
  Matrix& h1 = ws.h1;
  Matrix& f2 = ws.f2;
  Matrix& xhat = ws.xhat;
  std::vector<float>& inv_std = ws.inv_std;
  Matrix& qh = ws.qh;
  Matrix& kh = ws.kh;
  Matrix& vh = ws.vh;
  Matrix& scores = ws.scores;
  Matrix& oh = ws.oh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (size_t l = 0; l < config_.num_layers; ++l) {
    const LayerParams& p = layers_[l];

    // --- Attention sublayer (pre-LN) ---
    LayerNormForward(x, p.ln1_gamma, p.ln1_beta, &y, &xhat, &inv_std);
    MatMul(y, p.wq.value, &q);
    MatMul(y, p.wk.value, &k);
    MatMul(y, p.wv.value, &v);
    o.ResizeZero(total, d);
    for (size_t s = 0; s < batch; ++s) {
      const size_t begin = offset[s];
      const size_t len = offset[s + 1] - begin;
      for (size_t h = 0; h < heads; ++h) {
        SliceHeadRange(q, begin, len, h, dh, &qh);
        SliceHeadRange(k, begin, len, h, dh, &kh);
        SliceHeadRange(v, begin, len, h, dh, &vh);
        MatMulNT(qh, kh, &scores);
        AttentionSoftmaxRows(&scores, scale);
        MatMul(scores, vh, &oh);
        UnsliceHeadRangeAcc(oh, begin, h, dh, &o);
      }
    }
    MatMul(o, p.wo.value, &z);
    x2 = x;
    x2.Add(z);

    // --- Feed-forward sublayer (pre-LN) ---
    LayerNormForward(x2, p.ln2_gamma, p.ln2_beta, &y2, &xhat, &inv_std);
    MatMul(y2, p.w1.value, &h1);
    AddBiasReLU(&h1, p.b1);
    MatMul(h1, p.w2.value, &f2);
    AddBias(&f2, p.b2);
    x2.Add(f2);
    // Swap instead of move: x2's old buffer becomes next layer's scratch.
    std::swap(x, x2);
  }

  // Final LayerNorm + classification on each sequence's [CLS] row.
  Matrix& yf = ws.yf;
  LayerNormForward(x, lnf_gamma_, lnf_beta_, &yf, &xhat, &inv_std);
  for (size_t s = 0; s < batch; ++s) {
    ClassifyClsRow(yf.row(offset[s]), wc_, bc_, d, config_.num_classes,
                   probs.row(s));
  }
  return probs;
}

float TransformerClassifier::Loss(const EncodedSequence& input,
                                  int label) const {
  auto probs = ForwardImpl(input, nullptr);
  return -std::log(std::max(probs[static_cast<size_t>(label)], 1e-12f));
}

float TransformerClassifier::ForwardBackward(const EncodedSequence& input,
                                             int label) {
  ForwardCache cache;
  auto probs = ForwardImpl(input, &cache);
  BackwardImpl(input, label, cache, probs);
  return -std::log(std::max(probs[static_cast<size_t>(label)], 1e-12f));
}

void TransformerClassifier::BackwardImpl(const EncodedSequence& input,
                                         int label, const ForwardCache& cache,
                                         const std::vector<float>& probs) {
  const std::vector<int32_t>& tokens = input.tokens;
  const size_t d = config_.d_model;
  const size_t heads = config_.num_heads;
  const size_t dh = d / heads;
  const size_t len = cache.seq_len;

  // dlogits = probs - onehot(label).
  std::vector<float> dlogits(probs);
  dlogits[static_cast<size_t>(label)] -= 1.0f;

  // Classifier head.
  const float* cls = cache.yf.row(0);
  Matrix dyf(len, d);
  dyf.Zero();
  float* dcls = dyf.row(0);
  for (size_t c = 0; c < config_.num_classes; ++c) {
    bc_.grad.data()[c] += dlogits[c];
    for (size_t j = 0; j < d; ++j) {
      wc_.grad.at(j, c) += cls[j] * dlogits[c];
      dcls[j] += wc_.value.at(j, c) * dlogits[c];
    }
  }

  // Final LayerNorm.
  Matrix dx(len, d);
  dx.Zero();
  LayerNormBackward(dyf, cache.lnf_xhat, cache.lnf_inv_std, &lnf_gamma_,
                    &lnf_beta_, &dx);

  // Blocks in reverse.
  Matrix dx2, dy2, dh1, df2, dz, do_, dq, dk, dv, dy;
  Matrix qh, kh, vh, doh, dah, dsh, dqh, dkh, dvh;
  for (size_t l = config_.num_layers; l-- > 0;) {
    const LayerParams& p = layers_[l];
    LayerParams* pm = &layers_[l];
    const LayerCache& lc = cache.layers[l];

    // --- FFN sublayer backward: x3 = x2 + f2(ln2(x2)) ---
    // dx currently holds dL/dx3.
    dx2 = dx;  // residual path
    // f2 path: df2 = dx.
    // dW2 += h1^T df2 ; db2 += colsum(df2); dh1 = df2 W2^T.
    MatMulTN(lc.h1, dx, &df2);  // df2 here is dW2 contribution (F x D)
    pm->w2.grad.Add(df2);
    for (size_t i = 0; i < len; ++i) {
      const float* row = dx.row(i);
      float* b = pm->b2.grad.data();
      for (size_t j = 0; j < d; ++j) b[j] += row[j];
    }
    MatMulNT(dx, p.w2.value, &dh1);
    // ReLU backward.
    for (size_t i = 0; i < len; ++i) {
      float* row = dh1.row(i);
      const float* h = lc.h1.row(i);
      for (size_t j = 0; j < config_.d_ff; ++j) {
        if (h[j] <= 0.0f) row[j] = 0.0f;
      }
    }
    // dW1 += y2^T dh1 ; db1 += colsum(dh1); dy2 = dh1 W1^T.
    Matrix dw1;
    MatMulTN(lc.y2, dh1, &dw1);
    pm->w1.grad.Add(dw1);
    for (size_t i = 0; i < len; ++i) {
      const float* row = dh1.row(i);
      float* b = pm->b1.grad.data();
      for (size_t j = 0; j < config_.d_ff; ++j) b[j] += row[j];
    }
    MatMulNT(dh1, p.w1.value, &dy2);
    LayerNormBackward(dy2, lc.ln2_xhat, lc.ln2_inv_std, &pm->ln2_gamma,
                      &pm->ln2_beta, &dx2);

    // --- Attention sublayer backward: x2 = x + wo(attn(ln1(x))) ---
    // dx2 holds dL/dx2.
    dx = dx2;  // residual path to x
    // dWo += o^T dz where dz = dx2; do = dz Wo^T.
    Matrix dwo;
    MatMulTN(lc.o, dx2, &dwo);
    pm->wo.grad.Add(dwo);
    MatMulNT(dx2, p.wo.value, &do_);

    dq = Matrix(len, d);
    dq.Zero();
    dk = Matrix(len, d);
    dk.Zero();
    dv = Matrix(len, d);
    dv.Zero();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    for (size_t h = 0; h < heads; ++h) {
      SliceHead(lc.q, h, dh, &qh);
      SliceHead(lc.k, h, dh, &kh);
      SliceHead(lc.v, h, dh, &vh);
      SliceHead(do_, h, dh, &doh);
      const Matrix& a = lc.attn[h];
      // dA = doh vh^T ; dVh = A^T doh.
      MatMulNT(doh, vh, &dah);
      MatMulTN(a, doh, &dvh);
      // Softmax backward: dS = A o (dA - rowsum(dA o A)).
      dsh = Matrix(len, len);
      for (size_t i = 0; i < len; ++i) {
        const float* arow = a.row(i);
        const float* darow = dah.row(i);
        float dot = 0.0f;
        for (size_t j = 0; j < len; ++j) dot += arow[j] * darow[j];
        float* dsrow = dsh.row(i);
        for (size_t j = 0; j < len; ++j) {
          dsrow[j] = arow[j] * (darow[j] - dot) * scale;
        }
      }
      // dQh = dS Kh ; dKh = dS^T Qh.
      MatMul(dsh, kh, &dqh);
      MatMulTN(dsh, qh, &dkh);
      UnsliceHeadAcc(dqh, h, dh, &dq);
      UnsliceHeadAcc(dkh, h, dh, &dk);
      UnsliceHeadAcc(dvh, h, dh, &dv);
    }

    // Projection weights and dY.
    Matrix dwq, dwk, dwv;
    MatMulTN(lc.y, dq, &dwq);
    pm->wq.grad.Add(dwq);
    MatMulTN(lc.y, dk, &dwk);
    pm->wk.grad.Add(dwk);
    MatMulTN(lc.y, dv, &dwv);
    pm->wv.grad.Add(dwv);
    Matrix tmp;
    MatMulNT(dq, p.wq.value, &dy);
    MatMulNT(dk, p.wk.value, &tmp);
    dy.Add(tmp);
    MatMulNT(dv, p.wv.value, &tmp);
    dy.Add(tmp);
    LayerNormBackward(dy, lc.ln1_xhat, lc.ln1_inv_std, &pm->ln1_gamma,
                      &pm->ln1_beta, &dx);
    // dx now holds dL/d(block input) for the next-lower layer.
  }

  // Embedding + positional + segment + shared-flag gradients.
  for (size_t i = 0; i < len; ++i) {
    int32_t tok = tokens[i];
    if (tok < 0 || tok >= config_.vocab_size) tok = 0;
    float* de = embed_.grad.row(static_cast<size_t>(tok));
    float* dp = pos_.grad.row(i);
    float* dsg = seg_.grad.row(
        i < input.segments.size() && input.segments[i] ? 1 : 0);
    float* dsh = shared_.grad.row(
        i < input.shared.size() && input.shared[i] ? 1 : 0);
    const float* dxi = dx.row(i);
    for (size_t j = 0; j < d; ++j) {
      de[j] += dxi[j];
      dp[j] += dxi[j];
      dsg[j] += dxi[j];
      dsh[j] += dxi[j];
    }
  }
}

void TransformerClassifier::Step() { optimizer_.Step(parameters()); }

void TransformerClassifier::CopyWeightsFrom(const TransformerClassifier& other) {
  auto* self_params = this;
  auto* other_params = const_cast<TransformerClassifier*>(&other);
  auto dst = self_params->parameters();
  auto src = other_params->parameters();
  for (size_t i = 0; i < dst.size(); ++i) dst[i]->value = src[i]->value;
}

namespace {
constexpr uint32_t kMagic = 0x47524C4Du;  // "GRLM"
}

Status TransformerClassifier::Save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  auto put_u64 = [&](uint64_t v) {
    file.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  uint32_t magic = kMagic;
  file.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  put_u64(static_cast<uint64_t>(config_.vocab_size));
  put_u64(config_.d_model);
  put_u64(config_.num_heads);
  put_u64(config_.num_layers);
  put_u64(config_.d_ff);
  put_u64(config_.max_seq_len);
  put_u64(config_.num_classes);
  auto* self = const_cast<TransformerClassifier*>(this);
  for (Parameter* p : self->parameters()) {
    put_u64(p->value.rows());
    put_u64(p->value.cols());
    file.write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status TransformerClassifier::Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  auto get_u64 = [&]() {
    uint64_t v = 0;
    file.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  uint32_t magic = 0;
  file.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) return Status::InvalidArgument("bad model file magic");
  TransformerConfig on_disk;
  on_disk.vocab_size = static_cast<int32_t>(get_u64());
  on_disk.d_model = get_u64();
  on_disk.num_heads = get_u64();
  on_disk.num_layers = get_u64();
  on_disk.d_ff = get_u64();
  on_disk.max_seq_len = get_u64();
  on_disk.num_classes = get_u64();
  if (on_disk.vocab_size != config_.vocab_size ||
      on_disk.d_model != config_.d_model ||
      on_disk.num_heads != config_.num_heads ||
      on_disk.num_layers != config_.num_layers ||
      on_disk.d_ff != config_.d_ff ||
      on_disk.max_seq_len != config_.max_seq_len ||
      on_disk.num_classes != config_.num_classes) {
    return Status::InvalidArgument("model config mismatch in " + path);
  }
  for (Parameter* p : parameters()) {
    uint64_t rows = get_u64(), cols = get_u64();
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter shape mismatch in " + path);
    }
    file.read(reinterpret_cast<char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!file) return Status::IOError("truncated model file: " + path);
  return Status::OK();
}

}  // namespace gralmatch

#ifndef GRALMATCH_NN_SIMD_H_
#define GRALMATCH_NN_SIMD_H_

/// \file simd.h
/// Configure-time kernel selection for the nn hot loops.
///
/// `-DGRALMATCH_SIMD=ON` (the default) compiles the nn module with
/// `-fopenmp-simd` and defines GRALMATCH_SIMD_ENABLED, turning
/// GRALMATCH_SIMD_LOOP into an `omp simd` hint on the annotated inner loops;
/// `-DGRALMATCH_SIMD=OFF` is the scalar fallback where the macro expands to
/// nothing (a CI leg keeps that path green).
///
/// Only *lane-independent* elementwise loops are annotated — loops where
/// element j reads and writes exclusively its own accumulator, so
/// vectorizing executes the identical operation sequence per element and
/// the result is bitwise-identical to the scalar build. Reduction loops
/// (dot products in MatMulNT, softmax sums) are deliberately left scalar:
/// a vectorized reduction reorders the additions and would break the
/// repo-wide bitwise-equivalence contracts (golden metrics, batch-vs-
/// per-pair differentials, checkpoint byte-stability). See
/// docs/matchers.md "Kernel dispatch".
#if defined(GRALMATCH_SIMD_ENABLED)
#define GRALMATCH_SIMD_LOOP _Pragma("omp simd")
#else
#define GRALMATCH_SIMD_LOOP
#endif

#endif  // GRALMATCH_NN_SIMD_H_

#ifndef GRALMATCH_DATA_GROUND_TRUTH_H_
#define GRALMATCH_DATA_GROUND_TRUTH_H_

/// \file ground_truth.h
/// Ground-truth entity assignment for a RecordTable, plus the pair types
/// used throughout blocking, matching and evaluation.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "data/record.h"

namespace gralmatch {

/// \brief Unordered record pair, normalized so that a < b.
struct RecordPair {
  RecordId a = kInvalidRecord;
  RecordId b = kInvalidRecord;

  RecordPair() = default;
  RecordPair(RecordId x, RecordId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  bool operator==(const RecordPair& o) const { return a == o.a && b == o.b; }
  bool operator<(const RecordPair& o) const {
    return a != o.a ? a < o.a : b < o.b;
  }
};

struct RecordPairHash {
  size_t operator()(const RecordPair& p) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(static_cast<uint32_t>(p.a)) << 32) |
        static_cast<uint32_t>(p.b));
  }
};

/// \brief Entity assignment: one EntityId per record.
///
/// Two records match iff they share an entity id. The number of true matches
/// of an entity group of size g is g*(g-1)/2 (the complete graph).
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(std::vector<EntityId> entity_of)
      : entity_of_(std::move(entity_of)) {}

  /// Assign a record to an entity, growing the table as needed.
  void Assign(RecordId record, EntityId entity);

  EntityId entity_of(RecordId record) const {
    return entity_of_[static_cast<size_t>(record)];
  }

  size_t num_records() const { return entity_of_.size(); }

  bool IsMatch(RecordId a, RecordId b) const {
    return entity_of(a) != kInvalidEntity && entity_of(a) == entity_of(b);
  }
  bool IsMatch(const RecordPair& p) const { return IsMatch(p.a, p.b); }

  /// Records of each entity, keyed by entity id.
  std::unordered_map<EntityId, std::vector<RecordId>> Groups() const;

  /// Number of distinct entities with at least one record.
  size_t NumEntities() const;

  /// Total number of true matches: sum over groups of g*(g-1)/2.
  uint64_t NumTrueMatches() const;

  /// All true match pairs (complete graph per group). Quadratic in group
  /// size; intended for evaluation and training-pair construction.
  std::vector<RecordPair> AllTruePairs() const;

 private:
  std::vector<EntityId> entity_of_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_DATA_GROUND_TRUTH_H_

#ifndef GRALMATCH_DATA_RECORD_H_
#define GRALMATCH_DATA_RECORD_H_

/// \file record.h
/// Core data model: multi-source records with ordered string attributes.
/// Records are identified by their index in a RecordTable; every record
/// carries the id of the data source it originates from.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gralmatch {

/// Index of a record within its RecordTable.
using RecordId = int32_t;
/// Ground-truth entity identifier.
using EntityId = int32_t;
/// Data-source (vendor) identifier.
using SourceId = int16_t;

constexpr RecordId kInvalidRecord = -1;
constexpr EntityId kInvalidEntity = -1;

/// What a record describes.
enum class RecordKind : uint8_t { kCompany, kSecurity, kProduct };

/// \brief One record: a source id plus an ordered list of (name, value)
/// attributes.
///
/// Attribute order is preserved because serialization order matters to the
/// sequence models (leading attributes survive truncation). Multi-valued
/// identifier attributes store their values joined with '|'. Attribute names
/// beginning with '_' are metadata: they are excluded from AllText() and by
/// convention from every matching input (serializers, blockers).
class Record {
 public:
  Record() = default;
  Record(SourceId source, RecordKind kind) : source_(source), kind_(kind) {}

  SourceId source() const { return source_; }
  RecordKind kind() const { return kind_; }

  /// Append or overwrite an attribute. Overwrite keeps the original position.
  void Set(std::string_view name, std::string_view value);

  /// Value of an attribute, or "" if absent.
  std::string_view Get(std::string_view name) const;

  /// True if the attribute exists and is non-empty.
  bool Has(std::string_view name) const;

  /// Remove an attribute if present.
  void Erase(std::string_view name);

  /// All attributes in insertion order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attrs_;
  }

  /// Values of a '|'-joined multi-valued attribute (empty values dropped).
  std::vector<std::string> GetMulti(std::string_view name) const;

  /// Append a value to a '|'-joined multi-valued attribute (deduplicated).
  void AddMulti(std::string_view name, std::string_view value);

  /// Concatenation of all attribute values, space-separated (for TF-IDF /
  /// token statistics).
  std::string AllText() const;

 private:
  SourceId source_ = 0;
  RecordKind kind_ = RecordKind::kCompany;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

/// \brief A table of records from multiple sources.
class RecordTable {
 public:
  /// Append a record, returning its id.
  RecordId Add(Record record);

  const Record& at(RecordId id) const { return records_[static_cast<size_t>(id)]; }
  Record* mutable_at(RecordId id) { return &records_[static_cast<size_t>(id)]; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const std::vector<Record>& records() const { return records_; }

  /// Number of distinct source ids present.
  size_t NumSources() const;

 private:
  std::vector<Record> records_;
};

}  // namespace gralmatch

#endif  // GRALMATCH_DATA_RECORD_H_

#include "data/ground_truth.h"

#include <algorithm>

namespace gralmatch {

void GroundTruth::Assign(RecordId record, EntityId entity) {
  size_t idx = static_cast<size_t>(record);
  if (idx >= entity_of_.size()) entity_of_.resize(idx + 1, kInvalidEntity);
  entity_of_[idx] = entity;
}

std::unordered_map<EntityId, std::vector<RecordId>> GroundTruth::Groups() const {
  std::unordered_map<EntityId, std::vector<RecordId>> out;
  for (size_t i = 0; i < entity_of_.size(); ++i) {
    if (entity_of_[i] == kInvalidEntity) continue;
    out[entity_of_[i]].push_back(static_cast<RecordId>(i));
  }
  return out;
}

size_t GroundTruth::NumEntities() const {
  auto groups = Groups();
  return groups.size();
}

uint64_t GroundTruth::NumTrueMatches() const {
  uint64_t total = 0;
  for (const auto& [e, members] : Groups()) {
    uint64_t g = members.size();
    total += g * (g - 1) / 2;
  }
  return total;
}

std::vector<RecordPair> GroundTruth::AllTruePairs() const {
  std::vector<RecordPair> out;
  for (const auto& [e, members] : Groups()) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        out.emplace_back(members[i], members[j]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gralmatch

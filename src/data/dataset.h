#ifndef GRALMATCH_DATA_DATASET_H_
#define GRALMATCH_DATA_DATASET_H_

/// \file dataset.h
/// Dataset containers and the group-wise train/validation/test split of
/// §5.1.3 of the paper (60/20/20 over ground-truth record groups, so that
/// all records of an entity land in exactly one split).

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/ground_truth.h"
#include "data/record.h"

namespace gralmatch {

/// \brief A matchable dataset: records plus their ground-truth grouping.
struct Dataset {
  std::string name;
  RecordTable records;
  GroundTruth truth;

  /// For securities datasets: companies table the securities reference via
  /// the "issuer_ref" attribute (record id in `issuer_records`), along with
  /// its ground truth. Empty for company/product datasets.
  RecordTable issuer_records;
  GroundTruth issuer_truth;

  bool has_issuers() const { return !issuer_records.empty(); }
};

/// Which split a record group was assigned to.
enum class SplitPart : uint8_t { kTrain = 0, kValidation = 1, kTest = 2 };

/// \brief Assignment of every entity (and hence every record) to a split.
struct GroupSplit {
  std::vector<SplitPart> part_of_record;   ///< indexed by RecordId

  /// Record ids belonging to a split part.
  std::vector<RecordId> RecordsIn(SplitPart part) const;

  SplitPart part(RecordId r) const { return part_of_record[static_cast<size_t>(r)]; }
};

/// Split ground-truth record groups 60/20/20 (train/val/test) uniformly at
/// random with the given rng. Records with no entity go to train.
GroupSplit SplitByGroups(const GroundTruth& truth, Rng* rng,
                         double train_frac = 0.6, double val_frac = 0.2);

}  // namespace gralmatch

#endif  // GRALMATCH_DATA_DATASET_H_

#include "data/dataset.h"

#include <algorithm>

namespace gralmatch {

std::vector<RecordId> GroupSplit::RecordsIn(SplitPart part) const {
  std::vector<RecordId> out;
  for (size_t i = 0; i < part_of_record.size(); ++i) {
    if (part_of_record[i] == part) out.push_back(static_cast<RecordId>(i));
  }
  return out;
}

GroupSplit SplitByGroups(const GroundTruth& truth, Rng* rng, double train_frac,
                         double val_frac) {
  auto groups = truth.Groups();
  std::vector<EntityId> entities;
  entities.reserve(groups.size());
  for (const auto& [e, members] : groups) entities.push_back(e);
  std::sort(entities.begin(), entities.end());
  rng->Shuffle(&entities);

  size_t n = entities.size();
  size_t n_train = static_cast<size_t>(n * train_frac);
  size_t n_val = static_cast<size_t>(n * val_frac);

  GroupSplit split;
  split.part_of_record.assign(truth.num_records(), SplitPart::kTrain);
  for (size_t i = 0; i < n; ++i) {
    SplitPart part = i < n_train                ? SplitPart::kTrain
                     : i < n_train + n_val      ? SplitPart::kValidation
                                                : SplitPart::kTest;
    for (RecordId r : groups[entities[i]]) {
      split.part_of_record[static_cast<size_t>(r)] = part;
    }
  }
  return split;
}

}  // namespace gralmatch

#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"

namespace gralmatch {

Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        break;
      case '\r':
        // Line terminator: CRLF (skip the LF half) or a bare classic-Mac
        // CR. A stray \r mid-field used to be silently dropped, gluing the
        // text around it into one field — treating every unquoted \r as a
        // row break matches how \r-accepting CSV readers behave. Literal
        // \r content belongs in a quoted field (the writer quotes it).
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        if (row_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_started = false;
        }
        break;
      default:
        field.push_back(c);
        row_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field in CSV input");
  }
  if (row_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {
void AppendCsvField(const std::string& f, std::string* out) {
  bool need_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
  if (!need_quotes) {
    out->append(f);
    return;
  }
  out->push_back('"');
  for (char c : f) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}
}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    if (row.empty() || (row.size() == 1 && row[0].empty())) {
      // A zero-field row or a lone empty field would serialize to a blank
      // line, which ParseCsv (correctly) skips; quote it so the row
      // round-trips (a zero-field row comes back as one empty field — CSV
      // has no representation that distinguishes the two).
      out.append("\"\"");
    } else {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out.push_back(',');
        AppendCsvField(row[i], &out);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteRecordsCsv(const std::string& path, const RecordTable& table,
                       const GroundTruth* truth) {
  // Union of attribute names, first-seen order.
  std::vector<std::string> columns;
  std::unordered_map<std::string, size_t> column_index;
  for (const auto& rec : table.records()) {
    for (const auto& [n, v] : rec.attributes()) {
      if (!column_index.count(n)) {
        column_index[n] = columns.size();
        columns.push_back(n);
      }
    }
  }

  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.size() + 1);
  std::vector<std::string> header = {"source", "entity_id"};
  header.insert(header.end(), columns.begin(), columns.end());
  rows.push_back(std::move(header));

  for (size_t i = 0; i < table.size(); ++i) {
    const Record& rec = table.at(static_cast<RecordId>(i));
    std::vector<std::string> row(columns.size() + 2);
    row[0] = std::to_string(rec.source());
    row[1] = truth ? std::to_string(truth->entity_of(static_cast<RecordId>(i)))
                   : "-1";
    for (const auto& [n, v] : rec.attributes()) {
      row[2 + column_index[n]] = v;
    }
    rows.push_back(std::move(row));
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for writing: " + path);
  std::string csv = WriteCsv(rows);
  file.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ReadRecordsCsv(const std::string& path, RecordKind kind,
                      RecordTable* table, GroundTruth* truth) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  std::stringstream buf;
  buf << file.rdbuf();
  GRALMATCH_ASSIGN_OR_RETURN(auto rows, ParseCsv(buf.str()));
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);

  const auto& header = rows[0];
  if (header.size() < 2 || header[0] != "source" || header[1] != "entity_id") {
    return Status::InvalidArgument("unexpected CSV header in " + path);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 2) continue;
    Record rec(static_cast<SourceId>(std::atoi(row[0].c_str())), kind);
    for (size_t c = 2; c < row.size() && c < header.size(); ++c) {
      if (!row[c].empty()) rec.Set(header[c], row[c]);
    }
    RecordId id = table->Add(std::move(rec));
    if (truth) {
      truth->Assign(id, static_cast<EntityId>(std::atoi(row[1].c_str())));
    }
  }
  return Status::OK();
}

}  // namespace gralmatch

#include "data/record.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace gralmatch {

void Record::Set(std::string_view name, std::string_view value) {
  for (auto& [n, v] : attrs_) {
    if (n == name) {
      v = std::string(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(name), std::string(value));
}

std::string_view Record::Get(std::string_view name) const {
  for (const auto& [n, v] : attrs_) {
    if (n == name) return v;
  }
  return {};
}

bool Record::Has(std::string_view name) const { return !Get(name).empty(); }

void Record::Erase(std::string_view name) {
  attrs_.erase(std::remove_if(attrs_.begin(), attrs_.end(),
                              [&](const auto& kv) { return kv.first == name; }),
               attrs_.end());
}

std::vector<std::string> Record::GetMulti(std::string_view name) const {
  std::vector<std::string> out;
  std::string_view raw = Get(name);
  if (raw.empty()) return out;
  for (auto& part : Split(raw, '|')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

void Record::AddMulti(std::string_view name, std::string_view value) {
  if (value.empty()) return;
  auto existing = GetMulti(name);
  for (const auto& v : existing) {
    if (v == value) return;
  }
  existing.emplace_back(value);
  Set(name, Join(existing, "|"));
}

std::string Record::AllText() const {
  std::string out;
  for (const auto& [n, v] : attrs_) {
    if (v.empty() || (!n.empty() && n[0] == '_')) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(v);
  }
  return out;
}

RecordId RecordTable::Add(Record record) {
  records_.push_back(std::move(record));
  return static_cast<RecordId>(records_.size() - 1);
}

size_t RecordTable::NumSources() const {
  std::set<SourceId> sources;
  for (const auto& r : records_) sources.insert(r.source());
  return sources.size();
}

}  // namespace gralmatch

#ifndef GRALMATCH_DATA_CSV_H_
#define GRALMATCH_DATA_CSV_H_

/// \file csv.h
/// Minimal RFC-4180-style CSV reading/writing for exporting and re-importing
/// generated datasets (quoted fields, embedded commas/quotes/newlines).

#include <string>
#include <vector>

#include "common/status.h"
#include "data/ground_truth.h"
#include "data/record.h"

namespace gralmatch {

/// Parse one CSV document into rows of fields.
Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text);

/// Serialize rows to CSV (fields quoted when needed).
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Write a RecordTable (+ optional ground truth) to a CSV file with columns:
/// source, entity_id, then the union of attribute names in first-seen order.
Status WriteRecordsCsv(const std::string& path, const RecordTable& table,
                       const GroundTruth* truth);

/// Read back a file produced by WriteRecordsCsv.
Status ReadRecordsCsv(const std::string& path, RecordKind kind,
                      RecordTable* table, GroundTruth* truth);

}  // namespace gralmatch

#endif  // GRALMATCH_DATA_CSV_H_
